"""Read-path analysis: sense margins and sneak-path currents.

Passive crossbars suffer from sneak-path currents: when reading one cell, the
unselected cells form parallel conduction paths that disturb the sensed
current.  This module quantifies that effect for the reproduction's crossbar
— it is what makes the V/2 biasing of the paper necessary in the first place
and determines how reliably a NeuroHammer-induced flip is visible to the
memory controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from .crossbar import CrossbarArray
from .drivers import read_bias

Cell = Tuple[int, int]


@dataclass
class ReadMargin:
    """Sensed currents of a cell in both states under identical surroundings."""

    cell: Cell
    lrs_current_a: float
    hrs_current_a: float

    @property
    def ratio(self) -> float:
        """LRS/HRS sensed-current ratio (> 1 means the states are separable)."""
        if self.hrs_current_a <= 0:
            return float("inf")
        return self.lrs_current_a / self.hrs_current_a

    @property
    def margin_a(self) -> float:
        """Absolute current margin between the two states [A]."""
        return self.lrs_current_a - self.hrs_current_a

    @property
    def midpoint_a(self) -> float:
        """Geometric-mean sensing threshold [A]."""
        return float(np.sqrt(max(self.lrs_current_a, 1e-30) * max(self.hrs_current_a, 1e-30)))


@dataclass
class SneakPathReport:
    """Worst-case sneak-path analysis of a read operation."""

    cell: Cell
    #: Sensed current with the victim in HRS and all other cells in HRS [A].
    isolated_hrs_current_a: float
    #: Sensed current with the victim in HRS and all other cells in LRS [A].
    worst_case_hrs_current_a: float
    #: Sensed current with the victim in LRS and all other cells in HRS [A].
    isolated_lrs_current_a: float

    @property
    def sneak_current_a(self) -> float:
        """Additional current attributable to sneak paths [A]."""
        return self.worst_case_hrs_current_a - self.isolated_hrs_current_a

    @property
    def read_window_a(self) -> float:
        """Remaining window between worst-case HRS and isolated LRS reads [A]."""
        return self.isolated_lrs_current_a - self.worst_case_hrs_current_a

    @property
    def window_closed(self) -> bool:
        """True if sneak paths destroy the read window entirely."""
        return self.read_window_a <= 0.0


def sensed_column_current(crossbar: CrossbarArray, cell: Cell, read_voltage_v: float = 0.2) -> float:
    """Current a sense amplifier on the selected bit line would measure [A].

    The sense amplifier sees the *column* current: the selected cell's
    current plus whatever the half-selected cells of the same column inject
    through the sneak paths.  This is what makes sneak paths a read-disturb
    problem in passive crossbars.
    """
    cell = tuple(cell)
    crossbar.geometry.validate_cell(*cell)
    bias = read_bias(crossbar.geometry, cell, read_voltage_v)
    op = crossbar.solve_bias(bias)
    column = cell[1]
    return float(abs(op.device_currents_a[:, column].sum()))


def read_margin(
    crossbar: CrossbarArray,
    cell: Cell,
    read_voltage_v: float = 0.2,
    background_x: float = 0.0,
) -> ReadMargin:
    """Sense the cell in both states while the rest of the array is fixed."""
    cell = tuple(cell)
    crossbar.geometry.validate_cell(*cell)
    snapshot = crossbar.copy_state_arrays()
    try:
        crossbar.initialise_states(default_x=background_x)

        crossbar.set_state(cell, 1.0)
        lrs_current = sensed_column_current(crossbar, cell, read_voltage_v)

        crossbar.set_state(cell, 0.0)
        hrs_current = sensed_column_current(crossbar, cell, read_voltage_v)
    finally:
        crossbar.restore_states(snapshot)
    return ReadMargin(cell=cell, lrs_current_a=lrs_current, hrs_current_a=hrs_current)


def sneak_path_report(
    crossbar: CrossbarArray,
    cell: Cell,
    read_voltage_v: float = 0.2,
) -> SneakPathReport:
    """Quantify the worst-case sneak-path disturbance for one cell."""
    cell = tuple(cell)
    crossbar.geometry.validate_cell(*cell)
    snapshot = crossbar.copy_state_arrays()
    try:
        crossbar.initialise_states(default_x=0.0)
        isolated_hrs = sensed_column_current(crossbar, cell, read_voltage_v)

        crossbar.set_state(cell, 1.0)
        isolated_lrs = sensed_column_current(crossbar, cell, read_voltage_v)

        crossbar.initialise_states(default_x=1.0)
        crossbar.set_state(cell, 0.0)
        worst_hrs = sensed_column_current(crossbar, cell, read_voltage_v)
    finally:
        crossbar.restore_states(snapshot)
    return SneakPathReport(
        cell=cell,
        isolated_hrs_current_a=isolated_hrs,
        worst_case_hrs_current_a=worst_hrs,
        isolated_lrs_current_a=isolated_lrs,
    )


def array_read_margins(
    crossbar: CrossbarArray, read_voltage_v: float = 0.2
) -> Dict[Cell, ReadMargin]:
    """Read margins of every cell in the array."""
    return {
        tuple(cell): read_margin(crossbar, cell, read_voltage_v)
        for cell in crossbar.geometry.iter_cells()
    }


def minimum_read_window(margins: Dict[Cell, ReadMargin]) -> float:
    """Smallest LRS/HRS current ratio over the array."""
    if not margins:
        raise ConfigurationError("no read margins supplied")
    return min(margin.ratio for margin in margins.values())

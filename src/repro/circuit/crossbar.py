"""The memristive crossbar array: devices, wires, drivers and thermal state.

:class:`CrossbarArray` is the central object of the circuit-level framework
(the "memristive crossbar" block of the paper's Fig. 2c).  It owns the device
states of every crosspoint, solves bias patterns through the nonlinear nodal
solver, and keeps the electro-thermal picture consistent by combining each
cell's self-heating (Eq. 6) with the crosstalk hub contribution (Eq. 5).

Device state is stored as ``(rows, columns)`` float arrays
(:class:`~repro.devices.base.DeviceStateArrays`) so the solver and the
transient engine can evaluate the whole array in vectorized calls; the
historic per-cell Mapping API remains available through :attr:`states`, a
live :class:`~repro.devices.base.DeviceStateMapView`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

import numpy as np

from ..config import CrossbarGeometry, WireParameters
from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K
from ..devices.base import (
    DeviceState,
    DeviceStateArrays,
    DeviceStateMapView,
    MemristorModel,
    bit_from_state,
)
from ..devices.jart_vcm import JartVcmModel
from ..errors import ConfigurationError, DeviceModelError, GeometryError
from ..thermal.coupling import AnalyticCouplingModel, CouplingModel
from .crosstalk_hub import CrosstalkHub
from .drivers import BiasPattern
from .netlist import CrossbarNetlist, build_crossbar_netlist
from .solver import CrossbarSolver, OperatingPoint

Cell = Tuple[int, int]


@dataclass
class ThermalSnapshot:
    """Electro-thermal state of the array under one bias pattern."""

    operating_point: OperatingPoint
    #: Filament temperature including self-heating and crosstalk [K].
    filament_temperatures_k: np.ndarray
    #: Crosstalk contribution alone [K].
    crosstalk_temperatures_k: np.ndarray

    def cell_temperature(self, cell: Cell) -> float:
        """Filament temperature of one cell [K]."""
        return float(self.filament_temperatures_k[cell[0], cell[1]])


class CrossbarArray:
    """A passive memristive crossbar with thermal crosstalk."""

    def __init__(
        self,
        geometry: CrossbarGeometry = None,
        model: MemristorModel = None,
        wires: WireParameters = None,
        coupling: CouplingModel = None,
        ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
        crosstalk_backend: str = "auto",
    ):
        self.geometry = geometry if geometry is not None else CrossbarGeometry()
        self.model = model if model is not None else JartVcmModel()
        self.wires = wires if wires is not None else WireParameters()
        if coupling is None:
            coupling = AnalyticCouplingModel(self.geometry)
        elif coupling.geometry is not self.geometry and (
            coupling.geometry.rows != self.geometry.rows
            or coupling.geometry.columns != self.geometry.columns
        ):
            raise GeometryError("coupling model geometry does not match the crossbar")
        if ambient_temperature_k <= 0:
            raise ConfigurationError("ambient temperature must be positive")
        self.ambient_temperature_k = ambient_temperature_k
        self.netlist: CrossbarNetlist = build_crossbar_netlist(self.geometry, self.wires)
        self.solver = CrossbarSolver(self.netlist, self.model)
        self.hub = CrosstalkHub(coupling, ambient_temperature_k, backend=crosstalk_backend)
        pristine = self.model.hrs_state(ambient_temperature_k)
        #: Array-native device state (authoritative storage).
        self.state = DeviceStateArrays(
            self.geometry.rows,
            self.geometry.columns,
            x=pristine.x,
            temperature_k=pristine.filament_temperature_k,
        )
        #: Live Mapping[Cell, DeviceState]-compatible view of :attr:`state`.
        self.states = DeviceStateMapView(self.state)

    # ------------------------------------------------------------------
    # state management
    # ------------------------------------------------------------------

    def set_state(self, cell: Cell, x: float) -> None:
        """Set the normalised state of one cell."""
        self.geometry.validate_cell(*cell)
        cell = tuple(cell)
        self.state.x[cell] = self.model.clamp_state(x)
        self.state.temperature_k[cell] = self.ambient_temperature_k

    def set_bit(self, cell: Cell, bit: int, lrs_is_one: bool = True) -> None:
        """Store a logical bit in a cell (ideal write, no dynamics)."""
        self.geometry.validate_cell(*cell)
        written = self.model.state_from_bit(
            bit, self.ambient_temperature_k, lrs_is_one=lrs_is_one
        )
        cell = tuple(cell)
        self.state.x[cell] = written.x
        self.state.temperature_k[cell] = written.filament_temperature_k

    def get_state(self, cell: Cell) -> DeviceState:
        """Return the (live) device state of a cell."""
        self.geometry.validate_cell(*cell)
        return self.states[tuple(cell)]

    def get_bit(self, cell: Cell, lrs_is_one: bool = True) -> int:
        """Decode the logical bit of a cell from its state."""
        return bit_from_state(self.get_state(cell), lrs_is_one=lrs_is_one)

    def state_map(self) -> np.ndarray:
        """(rows x columns) array of normalised states."""
        return self.state.x.copy()

    def bit_map(self, lrs_is_one: bool = True) -> np.ndarray:
        """(rows x columns) array of stored bits."""
        is_lrs = self.state.x >= 0.5
        bits = is_lrs if lrs_is_one else ~is_lrs
        return bits.astype(int)

    def initialise_states(self, values: Mapping[Cell, float] = None, default_x: float = 0.0) -> None:
        """Reset every cell, optionally overriding individual cells."""
        self.state.x.fill(self.model.clamp_state(default_x))
        self.state.temperature_k.fill(self.ambient_temperature_k)
        if values:
            for cell, x in values.items():
                self.set_state(tuple(cell), x)

    def initialise_bits(self, bits: np.ndarray, lrs_is_one: bool = True) -> None:
        """Load a full bit pattern (the paper's "init file")."""
        bits = np.asarray(bits)
        if bits.shape != (self.geometry.rows, self.geometry.columns):
            raise ConfigurationError("bit pattern shape does not match the crossbar")
        if np.any((bits != 0) & (bits != 1)):
            raise DeviceModelError("bit pattern entries must be 0 or 1")
        lrs = self.model.lrs_state(self.ambient_temperature_k)
        hrs = self.model.hrs_state(self.ambient_temperature_k)
        stored_as_lrs = (bits == 1) == lrs_is_one
        self.state.x[...] = np.where(stored_as_lrs, lrs.x, hrs.x)
        self.state.temperature_k[...] = np.where(
            stored_as_lrs, lrs.filament_temperature_k, hrs.filament_temperature_k
        )

    def reset_temperatures(self) -> None:
        """Relax every filament back to the ambient temperature."""
        self.state.temperature_k.fill(self.ambient_temperature_k)

    # ------------------------------------------------------------------
    # electro-thermal solves
    # ------------------------------------------------------------------

    def solve_bias(self, bias: BiasPattern) -> OperatingPoint:
        """Solve the electrical operating point for one bias pattern."""
        return self.solver.solve(bias, self.state)

    def thermal_snapshot(
        self,
        bias: BiasPattern,
        max_iterations: int = 8,
        tolerance_k: float = 1.0,
    ) -> ThermalSnapshot:
        """Solve bias and return the self-consistent electro-thermal picture.

        The device currents depend on the filament temperatures, which depend
        on the dissipated powers (Eq. 6) plus the crosstalk hub contribution
        (Eq. 5), which depend on the currents again.  The loop re-solves the
        electrical network with updated temperatures until the temperature
        field settles.

        The crosstalk hub is applied once per electrical solve, to the cells'
        *self-heating* rises: the alpha values already describe the complete
        steady-state thermal field of a dissipating cell, so re-radiating a
        crosstalk-received rise through the hub again would double-count heat
        paths.
        """
        if max_iterations < 1:
            raise ConfigurationError("max_iterations must be at least 1")
        rows, columns = self.geometry.rows, self.geometry.columns
        rth = self.model.thermal_resistance_k_per_w()
        crosstalk = np.zeros((rows, columns))
        temperatures = np.full((rows, columns), float(self.ambient_temperature_k))
        op = None
        for _ in range(max_iterations):
            op = self.solve_bias(bias)
            self_heating = rth * op.device_powers_w
            crosstalk = self.hub.additional_temperatures(self.ambient_temperature_k + self_heating)
            new_temperatures = self.ambient_temperature_k + self_heating + crosstalk
            change = float(np.abs(new_temperatures - temperatures).max())
            temperatures = new_temperatures
            self.state.temperature_k[...] = temperatures
            if change < tolerance_k:
                break
        return ThermalSnapshot(
            operating_point=op,
            filament_temperatures_k=temperatures,
            crosstalk_temperatures_k=crosstalk,
        )

    def temperature_map(self) -> np.ndarray:
        """Current filament temperatures of every cell [K]."""
        return self.state.temperature_k.copy()

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def cells(self) -> Iterable[Cell]:
        """Iterate over all cell coordinates."""
        return self.geometry.iter_cells()

    def centre_cell(self) -> Cell:
        """The middle cell — the paper's default aggressor."""
        return self.geometry.centre_cell()

    def copy_states(self) -> Dict[Cell, DeviceState]:
        """Deep copy of the per-cell states (for checkpoint/restore).

        Prefer :meth:`copy_state_arrays` in hot paths: it checkpoints the
        whole array with two array copies instead of one object per cell.
        """
        return {cell: self.states[cell].copy() for cell in self.geometry.iter_cells()}

    def copy_state_arrays(self) -> DeviceStateArrays:
        """Array-native checkpoint of the full device state (O(1) Python)."""
        return self.state.copy()

    def restore_states(
        self, snapshot: Union[DeviceStateArrays, Mapping[Cell, DeviceState]]
    ) -> None:
        """Restore a snapshot from :meth:`copy_states` or :meth:`copy_state_arrays`."""
        if isinstance(snapshot, DeviceStateArrays):
            if snapshot.shape != self.state.shape:
                raise GeometryError("state snapshot shape does not match the crossbar")
            self.state.x[...] = snapshot.x
            self.state.temperature_k[...] = snapshot.temperature_k
            return
        for cell, state in snapshot.items():
            self.geometry.validate_cell(*cell)
            self.states[tuple(cell)] = state.copy()

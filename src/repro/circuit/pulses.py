"""Pulse and stimulus descriptions for the circuit-level framework.

The paper drives the crossbar with rectangular pulses of fixed amplitude
(V_SET = 1.05 V) and configurable length/duty cycle, described by a stimuli
file (Sec. IV-B).  This module provides the in-memory equivalent: pulse
trains and time-ordered stimulus segments that the memory controller and the
transient engine consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..config import PulseConfig
from ..errors import ConfigurationError


@dataclass(frozen=True)
class RectangularPulse:
    """One rectangular voltage pulse."""

    amplitude_v: float
    length_s: float
    #: Idle time appended after the active part [s].
    idle_s: float = 0.0

    def __post_init__(self) -> None:
        if self.length_s <= 0:
            raise ConfigurationError("pulse length must be positive")
        if self.idle_s < 0:
            raise ConfigurationError("idle time cannot be negative")

    @property
    def period_s(self) -> float:
        """Total duration of one pulse period [s]."""
        return self.length_s + self.idle_s

    def voltage_at(self, time_in_period_s: float) -> float:
        """Instantaneous voltage at a time offset within the period [V]."""
        if 0.0 <= time_in_period_s < self.length_s:
            return self.amplitude_v
        return 0.0

    @classmethod
    def from_config(cls, config: PulseConfig) -> "RectangularPulse":
        """Build a pulse from the shared :class:`PulseConfig`."""
        return cls(amplitude_v=config.amplitude_v, length_s=config.length_s, idle_s=config.idle_s)


@dataclass
class PulseTrain:
    """A repeated rectangular pulse."""

    pulse: RectangularPulse
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError("pulse train needs at least one pulse")

    @property
    def total_duration_s(self) -> float:
        """Duration of the full train [s]."""
        return self.count * self.pulse.period_s

    @property
    def total_stress_s(self) -> float:
        """Cumulative active (biased) time [s]."""
        return self.count * self.pulse.length_s

    def voltage_at(self, time_s: float) -> float:
        """Instantaneous voltage of the train at an absolute time [V]."""
        if time_s < 0 or time_s >= self.total_duration_s:
            return 0.0
        return self.pulse.voltage_at(time_s % self.pulse.period_s)

    def __iter__(self) -> Iterator[Tuple[float, RectangularPulse]]:
        """Iterate (start_time, pulse) for every pulse in the train."""
        for index in range(self.count):
            yield index * self.pulse.period_s, self.pulse


@dataclass
class StimulusSegment:
    """A time segment during which one bias pattern is applied.

    The bias pattern itself is described by the drivers module; the segment
    only knows its identifier to keep this module free of circular imports.
    """

    start_s: float
    duration_s: float
    #: Name of the operation this segment belongs to (write/read/hammer/idle).
    label: str = "bias"
    #: Arbitrary payload (typically a BiasPattern) forwarded to the engine.
    payload: object = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("stimulus segments must have positive duration")
        if self.start_s < 0:
            raise ConfigurationError("stimulus segments cannot start before t=0")

    @property
    def end_s(self) -> float:
        """End time of the segment [s]."""
        return self.start_s + self.duration_s


@dataclass
class StimulusSchedule:
    """Time-ordered, non-overlapping collection of stimulus segments."""

    segments: List[StimulusSegment] = field(default_factory=list)

    def append(self, segment: StimulusSegment) -> None:
        """Append a segment; it must not overlap the previous one."""
        if self.segments and segment.start_s < self.segments[-1].end_s - 1e-18:
            raise ConfigurationError("stimulus segments must be appended in time order")
        self.segments.append(segment)

    def append_after(self, duration_s: float, label: str = "bias", payload: object = None) -> StimulusSegment:
        """Append a segment immediately after the current schedule end."""
        segment = StimulusSegment(self.end_s, duration_s, label=label, payload=payload)
        self.append(segment)
        return segment

    @property
    def end_s(self) -> float:
        """End time of the schedule [s]."""
        return self.segments[-1].end_s if self.segments else 0.0

    def __iter__(self) -> Iterator[StimulusSegment]:
        return iter(self.segments)

    def __len__(self) -> int:
        return len(self.segments)


def hammer_schedule(
    pulse: PulseConfig,
    count: int,
    payload_active: object,
    payload_idle: Optional[object] = None,
    start_s: float = 0.0,
) -> StimulusSchedule:
    """Build the schedule of a hammering campaign: ``count`` pulse periods.

    Each period contributes an active segment carrying ``payload_active`` and,
    if the duty cycle is below one, an idle segment carrying ``payload_idle``.
    """
    if count < 1:
        raise ConfigurationError("hammer schedule needs at least one pulse")
    schedule = StimulusSchedule()
    time_s = start_s
    for index in range(count):
        schedule.append(StimulusSegment(time_s, pulse.length_s, label="hammer", payload=payload_active))
        time_s += pulse.length_s
        if pulse.idle_s > 0:
            schedule.append(StimulusSegment(time_s, pulse.idle_s, label="idle", payload=payload_idle))
            time_s += pulse.idle_s
    return schedule

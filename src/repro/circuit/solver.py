"""Nonlinear nodal-analysis solver for the crossbar netlist.

This replaces the SPICE engine of Cadence Virtuoso for the operating-point
solves the framework needs: given driver voltages, wire resistances and the
(nonlinear, state- and temperature-dependent) memristive devices, find all
node voltages such that Kirchhoff's current law holds at every node.

The solver performs damped Newton-Raphson iterations: at every iteration each
device is linearised around its present branch voltage (companion model with
small-signal conductance and an equivalent current source), the resulting
linear system is solved densely with numpy, and the node voltages are updated
with a step clamp that keeps the iteration stable even from a cold start.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..devices.base import DeviceState, MemristorModel
from ..errors import ConvergenceError
from .drivers import BiasPattern
from .netlist import GROUND_NODE, CrossbarNetlist

Cell = Tuple[int, int]


@dataclass
class OperatingPoint:
    """Solved DC operating point of the crossbar."""

    node_voltages_v: Dict[str, float]
    #: Per-cell branch voltage (word-line node minus bit-line node) [V].
    device_voltages_v: np.ndarray
    #: Per-cell branch current [A].
    device_currents_a: np.ndarray
    #: Per-cell dissipated power [W].
    device_powers_w: np.ndarray
    #: Newton iterations used.
    iterations: int
    #: Largest KCL residual at convergence [A].
    residual_a: float

    def cell_voltage(self, cell: Cell) -> float:
        """Branch voltage of one cell [V]."""
        return float(self.device_voltages_v[cell[0], cell[1]])

    def cell_current(self, cell: Cell) -> float:
        """Branch current of one cell [A]."""
        return float(self.device_currents_a[cell[0], cell[1]])

    def cell_power(self, cell: Cell) -> float:
        """Dissipated power of one cell [W]."""
        return float(self.device_powers_w[cell[0], cell[1]])

    @property
    def total_power_w(self) -> float:
        """Total power dissipated in the memristive devices [W]."""
        return float(self.device_powers_w.sum())


class CrossbarSolver:
    """Damped Newton nodal-analysis solver over a crossbar netlist."""

    def __init__(
        self,
        netlist: CrossbarNetlist,
        model: MemristorModel,
        max_iterations: int = 200,
        voltage_tolerance_v: float = 1e-7,
        residual_tolerance_a: float = 1e-9,
        max_step_v: float = 0.5,
    ):
        self.netlist = netlist
        self.model = model
        self.max_iterations = max_iterations
        self.voltage_tolerance_v = voltage_tolerance_v
        self.residual_tolerance_a = residual_tolerance_a
        self.max_step_v = max_step_v
        self._index: Dict[str, int] = {name: i for i, name in enumerate(netlist.nodes)}
        self._last_solution: Optional[np.ndarray] = None
        # Pre-compute the constant (linear) part of the conductance matrix.
        self._linear_matrix = self._assemble_linear_matrix()

    # -- assembly -----------------------------------------------------------

    def _assemble_linear_matrix(self) -> np.ndarray:
        n = self.netlist.node_count
        matrix = np.zeros((n, n))
        for resistor in self.netlist.resistors:
            g = resistor.conductance_s
            ia = self._index.get(resistor.node_a)
            ib = self._index.get(resistor.node_b)
            if ia is not None:
                matrix[ia, ia] += g
            if ib is not None:
                matrix[ib, ib] += g
            if ia is not None and ib is not None:
                matrix[ia, ib] -= g
                matrix[ib, ia] -= g
        return matrix

    def _driver_stamps(self, bias: BiasPattern) -> Tuple[np.ndarray, np.ndarray]:
        """Norton-equivalent driver stamps: (diagonal conductance, current)."""
        n = self.netlist.node_count
        extra_g = np.zeros(n)
        currents = np.zeros(n)
        for driver in self.netlist.drivers:
            if driver.line_type == "row":
                voltage = bias.row_voltage(driver.line_index)
            else:
                voltage = bias.column_voltage(driver.line_index)
            if voltage is None:
                continue  # floating line: no driver attached
            g = 1.0 / driver.series_resistance_ohm
            idx = self._index[driver.node]
            extra_g[idx] += g
            currents[idx] += g * voltage
        return extra_g, currents

    # -- solving --------------------------------------------------------------

    def solve(
        self,
        bias: BiasPattern,
        states: Mapping[Cell, DeviceState],
        initial_guess: Optional[np.ndarray] = None,
    ) -> OperatingPoint:
        """Solve the nonlinear operating point for one bias pattern.

        Args:
            bias: Driver voltages per line (None = floating).
            states: Device state per cell; every crosspoint must be present.
            initial_guess: Optional starting node-voltage vector; by default
                the previous solution (warm start) or zeros are used.
        """
        geometry = self.netlist.geometry
        n = self.netlist.node_count
        extra_g, driver_currents = self._driver_stamps(bias)

        if initial_guess is not None:
            voltages = np.array(initial_guess, dtype=float)
        elif self._last_solution is not None and len(self._last_solution) == n:
            voltages = self._last_solution.copy()
        else:
            voltages = np.zeros(n)

        device_index = [
            (
                device.cell,
                self._index[device.wordline_node],
                self._index[device.bitline_node],
            )
            for device in self.netlist.devices
        ]

        iterations = 0
        residual = np.inf
        for iterations in range(1, self.max_iterations + 1):
            matrix = self._linear_matrix.copy()
            matrix[np.diag_indices_from(matrix)] += extra_g
            rhs = driver_currents.copy()

            for cell, iw, ib in device_index:
                state = states[cell]
                branch_v = voltages[iw] - voltages[ib]
                current = self.model.current(branch_v, state)
                conductance = self.model.conductance(branch_v, state)
                equivalent = current - conductance * branch_v
                matrix[iw, iw] += conductance
                matrix[ib, ib] += conductance
                matrix[iw, ib] -= conductance
                matrix[ib, iw] -= conductance
                rhs[iw] -= equivalent
                rhs[ib] += equivalent

            new_voltages = np.linalg.solve(matrix, rhs)
            step = new_voltages - voltages
            max_step = np.abs(step).max() if len(step) else 0.0
            if max_step > self.max_step_v:
                step *= self.max_step_v / max_step
            voltages = voltages + step

            residual = self._kcl_residual(voltages, bias, states, extra_g, driver_currents, device_index)
            if max_step < self.voltage_tolerance_v and residual < self.residual_tolerance_a:
                break
        else:
            raise ConvergenceError(
                f"crossbar Newton solve did not converge after {self.max_iterations} iterations "
                f"(residual {residual:.3g} A)"
            )

        self._last_solution = voltages.copy()
        return self._operating_point(voltages, states, device_index, iterations, residual)

    # -- helpers ---------------------------------------------------------------

    def _kcl_residual(
        self,
        voltages: np.ndarray,
        bias: BiasPattern,
        states: Mapping[Cell, DeviceState],
        extra_g: np.ndarray,
        driver_currents: np.ndarray,
        device_index,
    ) -> float:
        """Maximum KCL residual of the present voltage vector [A]."""
        injection = driver_currents - extra_g * voltages
        residual = injection.copy()
        # Linear resistor currents.
        for resistor in self.netlist.resistors:
            ia = self._index[resistor.node_a]
            ib = self._index[resistor.node_b]
            current = (voltages[ia] - voltages[ib]) * resistor.conductance_s
            residual[ia] -= current
            residual[ib] += current
        # Device currents.
        for cell, iw, ib in device_index:
            branch_v = voltages[iw] - voltages[ib]
            current = self.model.current(branch_v, states[cell])
            residual[iw] -= current
            residual[ib] += current
        return float(np.abs(residual).max())

    def _operating_point(
        self,
        voltages: np.ndarray,
        states: Mapping[Cell, DeviceState],
        device_index,
        iterations: int,
        residual: float,
    ) -> OperatingPoint:
        geometry = self.netlist.geometry
        device_v = np.zeros((geometry.rows, geometry.columns))
        device_i = np.zeros_like(device_v)
        for cell, iw, ib in device_index:
            branch_v = voltages[iw] - voltages[ib]
            device_v[cell] = branch_v
            device_i[cell] = self.model.current(branch_v, states[cell])
        node_voltages = {name: float(voltages[self._index[name]]) for name in self.netlist.nodes}
        node_voltages[GROUND_NODE] = 0.0
        return OperatingPoint(
            node_voltages_v=node_voltages,
            device_voltages_v=device_v,
            device_currents_a=device_i,
            device_powers_w=np.abs(device_v * device_i),
            iterations=iterations,
            residual_a=residual,
        )

"""Nonlinear nodal-analysis solver for the crossbar netlist.

This replaces the SPICE engine of Cadence Virtuoso for the operating-point
solves the framework needs: given driver voltages, wire resistances and the
(nonlinear, state- and temperature-dependent) memristive devices, find all
node voltages such that Kirchhoff's current law holds at every node.

The solver performs damped Newton-Raphson iterations, exactly as the original
dense implementation did (kept as
:class:`repro.circuit.reference.ReferenceCrossbarSolver` for validation and
benchmarking), but every per-device Python loop has been replaced by
array-native code:

* all device currents and small-signal conductances are evaluated in one call
  through the model's :meth:`~repro.devices.base.MemristorModel.batched`
  interface (NumPy kernels for the shipped models);
* the Jacobian is assembled from index arrays precomputed once per netlist —
  the constant linear (wire + driver) stamps live in a cached CSR data
  vector, and the per-iteration device stamps are scattered into their CSR
  slots with vectorized fancy indexing;
* the linear system is solved with ``scipy.sparse.linalg.spsolve``; below a
  crossover size (or when SciPy is unavailable) a dense ``numpy.linalg.solve``
  over the same stamp data is used instead, which is faster for tiny systems.

The KCL residual check reuses the device currents already evaluated for the
stamps of the same iteration instead of recomputing them per device.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Tuple, Union

import numpy as np

try:  # SciPy is an optional accelerator: without it the dense path is used.
    from scipy import sparse as _sparse
    from scipy.sparse.linalg import spsolve as _spsolve

    _HAVE_SCIPY = True
except Exception:  # pragma: no cover - exercised only on scipy-less installs
    _sparse = None
    _spsolve = None
    _HAVE_SCIPY = False

from ..devices.base import (
    BatchedDeviceModel,
    DeviceState,
    DeviceStateArrays,
    MemristorModel,
)
from ..errors import ConfigurationError, ConvergenceError
from ..faults import register_retryable
from ..obs import get_audit, get_telemetry, get_watchdog
from .drivers import BiasPattern
from .netlist import GROUND_NODE, CrossbarNetlist

# A failed Newton solve is a warm-start/damping artefact more often than a
# property of the configuration, so campaigns may retry it (see repro.faults).
register_retryable(ConvergenceError)

Cell = Tuple[int, int]

#: Per-cell device states accepted by :meth:`CrossbarSolver.solve`: either the
#: array-native container or the legacy per-cell mapping.
StateLike = Union[DeviceStateArrays, Mapping[Cell, DeviceState]]

#: Below this node count the dense linear solve beats the sparse machinery.
DENSE_CROSSOVER_NODES = 500


class NodeVoltageMap(MappingABC):
    """Lazy ``{node name: voltage}`` view over the solved voltage vector.

    Building an explicit dict costs O(nodes) Python work per solve — wasteful
    for a 256x256 crossbar with ~130k nodes.  This view resolves names on
    demand and behaves like the dict the solver used to return (including the
    implicit ground entry).
    """

    __slots__ = ("_names", "_index", "_vector")

    def __init__(self, names, index: Dict[str, int], vector: np.ndarray):
        self._names = names
        self._index = index
        self._vector = vector

    def __getitem__(self, name: str) -> float:
        if name == GROUND_NODE:
            return 0.0
        return float(self._vector[self._index[name]])

    def __iter__(self) -> Iterator[str]:
        yield from self._names
        yield GROUND_NODE

    def __len__(self) -> int:
        return len(self._names) + 1


@dataclass
class OperatingPoint:
    """Solved DC operating point of the crossbar."""

    node_voltages_v: Mapping[str, float]
    #: Per-cell branch voltage (word-line node minus bit-line node) [V].
    device_voltages_v: np.ndarray
    #: Per-cell branch current [A].
    device_currents_a: np.ndarray
    #: Per-cell dissipated power [W].
    device_powers_w: np.ndarray
    #: Newton iterations used.
    iterations: int
    #: Largest KCL residual at convergence [A].
    residual_a: float

    def cell_voltage(self, cell: Cell) -> float:
        """Branch voltage of one cell [V]."""
        return float(self.device_voltages_v[cell[0], cell[1]])

    def cell_current(self, cell: Cell) -> float:
        """Branch current of one cell [A]."""
        return float(self.device_currents_a[cell[0], cell[1]])

    def cell_power(self, cell: Cell) -> float:
        """Dissipated power of one cell [W]."""
        return float(self.device_powers_w[cell[0], cell[1]])

    @property
    def total_power_w(self) -> float:
        """Total power dissipated in the memristive devices [W]."""
        return float(self.device_powers_w.sum())


class CrossbarSolver:
    """Damped Newton nodal-analysis solver over a crossbar netlist.

    Args:
        netlist: The expanded crossbar netlist.
        model: Scalar device model; its :meth:`batched` kernel evaluates all
            devices per iteration in one call.
        backend: ``"auto"`` (sparse above :data:`DENSE_CROSSOVER_NODES` when
            SciPy is available, dense otherwise), ``"sparse"`` or ``"dense"``.
        dense_crossover_nodes: Node-count threshold of the ``"auto"`` choice.
    """

    def __init__(
        self,
        netlist: CrossbarNetlist,
        model: MemristorModel,
        max_iterations: int = 200,
        voltage_tolerance_v: float = 1e-7,
        residual_tolerance_a: float = 1e-9,
        max_step_v: float = 0.5,
        backend: str = "auto",
        dense_crossover_nodes: int = DENSE_CROSSOVER_NODES,
    ):
        if backend not in ("auto", "sparse", "dense"):
            raise ConfigurationError(f"unknown solver backend {backend!r}")
        if backend == "sparse" and not _HAVE_SCIPY:
            raise ConfigurationError("the sparse solver backend requires scipy")
        self.netlist = netlist
        self.model = model
        self.max_iterations = max_iterations
        self.voltage_tolerance_v = voltage_tolerance_v
        self.residual_tolerance_a = residual_tolerance_a
        self.max_step_v = max_step_v
        self._index: Dict[str, int] = netlist.node_index
        self._last_solution: Optional[np.ndarray] = None
        self._batched: BatchedDeviceModel = model.batched()

        n = netlist.node_count
        if backend == "auto":
            self._use_sparse = _HAVE_SCIPY and n > dense_crossover_nodes
        else:
            self._use_sparse = backend == "sparse"
        #: Backend used by the most recent linear solve ("sparse" or "dense").
        self.last_backend: Optional[str] = None

        self._dev_w, self._dev_b, self._dev_rows, self._dev_cols = netlist.device_index_arrays
        self._assemble_structure()

    # -- assembly -----------------------------------------------------------

    def _assemble_structure(self) -> None:
        """Precompute the sparsity pattern and the constant (linear) stamps.

        The nodal matrix is the sum of three contributions: the constant wire
        resistor stamps, the per-solve driver Norton conductances (diagonal
        only) and the per-iteration device companion conductances.  All three
        are expressed as entries of one fixed COO template whose mapping onto
        CSR data slots is computed here once; each iteration then only fills
        a data vector — no Python loops, no re-sorting.
        """
        n = self.netlist.node_count
        res_a, res_b, res_g = self.netlist.resistor_index_arrays
        mask_a = res_a >= 0
        mask_b = res_b >= 0
        mask_ab = mask_a & mask_b

        lin_rows = np.concatenate([res_a[mask_a], res_b[mask_b], res_a[mask_ab], res_b[mask_ab]])
        lin_cols = np.concatenate([res_a[mask_a], res_b[mask_b], res_b[mask_ab], res_a[mask_ab]])
        lin_data = np.concatenate([res_g[mask_a], res_g[mask_b], -res_g[mask_ab], -res_g[mask_ab]])

        diag = np.arange(n, dtype=np.int64)
        dev_w, dev_b = self._dev_w, self._dev_b

        rows = np.concatenate([lin_rows, diag, dev_w, dev_b, dev_w, dev_b])
        cols = np.concatenate([lin_cols, diag, dev_w, dev_b, dev_b, dev_w])
        keys = rows * np.int64(n) + cols
        unique_keys, inverse = np.unique(keys, return_inverse=True)

        self._nnz = int(unique_keys.size)
        self._flat_index = unique_keys
        self._csr_indices = (unique_keys % n).astype(np.int32)
        self._csr_indptr = np.searchsorted(
            unique_keys, np.arange(n + 1, dtype=np.int64) * n
        ).astype(np.int32)

        n_lin = lin_rows.size
        nd = dev_w.size
        self._base_data = np.bincount(inverse[:n_lin], weights=lin_data, minlength=self._nnz)
        self._diag_slots = inverse[n_lin : n_lin + n]
        offset = n_lin + n
        self._slot_ww = inverse[offset : offset + nd]
        self._slot_bb = inverse[offset + nd : offset + 2 * nd]
        self._slot_wb = inverse[offset + 2 * nd : offset + 3 * nd]
        self._slot_bw = inverse[offset + 3 * nd : offset + 4 * nd]

        # Every crosspoint of a crossbar netlist owns its word-line and
        # bit-line node, so the scatter targets are unique and plain fancy
        # indexing applies; fall back to the buffered ufunc otherwise.
        self._unique_dev_nodes = (
            np.unique(dev_w).size == nd and np.unique(dev_b).size == nd
        )

        get_telemetry().count("solver.jacobian.structure_builds")

        if _HAVE_SCIPY:
            self._linear_operator = _sparse.csr_matrix(
                (self._base_data.copy(), self._csr_indices.copy(), self._csr_indptr.copy()),
                shape=(n, n),
            )
        else:
            dense = np.zeros(n * n)
            dense[self._flat_index] = self._base_data
            self._linear_operator = dense.reshape(n, n)

    def _driver_stamps(self, bias: BiasPattern) -> Tuple[np.ndarray, np.ndarray]:
        """Norton-equivalent driver stamps: (diagonal conductance, current)."""
        n = self.netlist.node_count
        extra_g = np.zeros(n)
        currents = np.zeros(n)
        for driver in self.netlist.drivers:
            if driver.line_type == "row":
                voltage = bias.row_voltage(driver.line_index)
            else:
                voltage = bias.column_voltage(driver.line_index)
            if voltage is None:
                continue  # floating line: no driver attached
            g = 1.0 / driver.series_resistance_ohm
            idx = self._index[driver.node]
            extra_g[idx] += g
            currents[idx] += g * voltage
        return extra_g, currents

    def _state_arrays(self, states: StateLike) -> Tuple[np.ndarray, np.ndarray]:
        """Per-device state and temperature vectors in netlist device order."""
        arrays = states if isinstance(states, DeviceStateArrays) else getattr(states, "arrays", None)
        if isinstance(arrays, DeviceStateArrays):
            geometry = self.netlist.geometry
            if arrays.shape != (geometry.rows, geometry.columns):
                raise ConfigurationError(
                    f"state array shape {arrays.shape} does not match the "
                    f"{geometry.rows}x{geometry.columns} netlist"
                )
            return (
                arrays.x[self._dev_rows, self._dev_cols],
                arrays.temperature_k[self._dev_rows, self._dev_cols],
            )
        count = len(self.netlist.devices)
        x = np.empty(count)
        temperature = np.empty(count)
        for k, device in enumerate(self.netlist.devices):
            state = states[device.cell]
            x[k] = state.x
            temperature[k] = state.filament_temperature_k
        return x, temperature

    # -- solving --------------------------------------------------------------

    def solve(
        self,
        bias: BiasPattern,
        states: StateLike,
        initial_guess: Optional[np.ndarray] = None,
    ) -> OperatingPoint:
        """Solve the nonlinear operating point for one bias pattern.

        Args:
            bias: Driver voltages per line (None = floating).
            states: Device state per cell — a :class:`DeviceStateArrays`
                container (fast path) or any mapping with every crosspoint
                present (legacy path).
            initial_guess: Optional starting node-voltage vector; by default
                the previous solution (warm start) or zeros are used.
        """
        n = self.netlist.node_count
        extra_g, driver_currents = self._driver_stamps(bias)
        x_arr, t_arr = self._state_arrays(states)

        warm_started = False
        if initial_guess is not None:
            voltages = np.array(initial_guess, dtype=float)
        elif self._last_solution is not None and len(self._last_solution) == n:
            voltages = self._last_solution.copy()
            warm_started = True
        else:
            voltages = np.zeros(n)

        dev_w, dev_b = self._dev_w, self._dev_b
        iterations = 0
        prev_step = np.inf
        converged = False
        residual = np.inf
        watchdog = get_watchdog()
        residual_trajectory = [] if watchdog.enabled else None
        for solve_count in range(self.max_iterations + 1):
            branch_v = voltages[dev_w] - voltages[dev_b]
            currents = self._batched.current(branch_v, x_arr, t_arr)
            residual = self._kcl_residual(voltages, extra_g, driver_currents, currents)
            if residual_trajectory is not None:
                residual_trajectory.append(residual)
            if prev_step < self.voltage_tolerance_v and residual < self.residual_tolerance_a:
                converged = True
                break
            if solve_count == self.max_iterations:
                break
            conductances = self._batched.conductance(branch_v, x_arr, t_arr)
            equivalent = currents - conductances * branch_v
            new_voltages = self._solve_linear(extra_g, driver_currents, conductances, equivalent)
            step = new_voltages - voltages
            max_step = float(np.abs(step).max()) if step.size else 0.0
            if max_step > self.max_step_v:
                step *= self.max_step_v / max_step
            voltages = voltages + step
            prev_step = max_step
            iterations = solve_count + 1

        tel = get_telemetry()
        if tel.enabled:
            tel.count("solver.solves")
            tel.count("solver.iterations", iterations)
            if iterations:
                # Every Newton iteration ran one linear solve on this backend
                # and scattered into the precomputed CSR slots.
                tel.count(f"solver.linear.{self.last_backend}", iterations)
                tel.count("solver.jacobian.reuses", iterations)
            if warm_started:
                tel.count("solver.warm_starts")
            tel.observe("solver.residual_a", residual)
            tel.observe("solver.iterations_per_solve", iterations)

        if watchdog.enabled:
            watchdog.check_array("solver.solve", "node_voltages_v", voltages)
            watchdog.check_array("solver.solve", "device_currents_a", currents)
            watchdog.check_iterations("solver.solve", iterations, self.max_iterations)
            watchdog.check_residuals("solver.solve", residual_trajectory)

        if not converged:
            if tel.enabled:
                tel.count("solver.failures")
            raise ConvergenceError(
                f"crossbar Newton solve did not converge after {self.max_iterations} iterations "
                f"(residual {residual:.3g} A)"
            )

        self._last_solution = voltages.copy()
        audit = get_audit()
        if audit.enabled:
            audit.record(
                "solver.operating_point",
                arrays={
                    "node_voltages_v": voltages,
                    "device_voltages_v": branch_v,
                    "device_currents_a": currents,
                },
                meta={"iterations": iterations, "residual_a": residual},
            )
        return self._operating_point(voltages, branch_v, currents, iterations, residual)

    # -- helpers ---------------------------------------------------------------

    def _solve_linear(
        self,
        extra_g: np.ndarray,
        driver_currents: np.ndarray,
        conductances: np.ndarray,
        equivalent: np.ndarray,
    ) -> np.ndarray:
        """Assemble the companion-model system and solve it once."""
        n = self.netlist.node_count
        data = self._base_data.copy()
        data[self._diag_slots] += extra_g
        if self._unique_dev_nodes:
            data[self._slot_ww] += conductances
            data[self._slot_bb] += conductances
            data[self._slot_wb] -= conductances
            data[self._slot_bw] -= conductances
        else:  # pragma: no cover - crossbar netlists always have unique nodes
            np.add.at(data, self._slot_ww, conductances)
            np.add.at(data, self._slot_bb, conductances)
            np.subtract.at(data, self._slot_wb, conductances)
            np.subtract.at(data, self._slot_bw, conductances)

        rhs = driver_currents.copy()
        if self._unique_dev_nodes:
            rhs[self._dev_w] -= equivalent
            rhs[self._dev_b] += equivalent
        else:  # pragma: no cover
            np.subtract.at(rhs, self._dev_w, equivalent)
            np.add.at(rhs, self._dev_b, equivalent)

        watchdog = get_watchdog()
        if watchdog.enabled:
            # Stamp-magnitude spread of the assembled Jacobian data: a cheap
            # conditioning proxy that drifts with the true condition number.
            watchdog.gauge_condition("solver.jacobian", data)

        if self._use_sparse:
            self.last_backend = "sparse"
            matrix = _sparse.csr_matrix(
                (data, self._csr_indices, self._csr_indptr), shape=(n, n)
            )
            return np.asarray(_spsolve(matrix, rhs))
        self.last_backend = "dense"
        dense = np.zeros(n * n)
        dense[self._flat_index] = data
        return np.linalg.solve(dense.reshape(n, n), rhs)

    def _kcl_residual(
        self,
        voltages: np.ndarray,
        extra_g: np.ndarray,
        driver_currents: np.ndarray,
        device_currents: np.ndarray,
    ) -> float:
        """Maximum KCL residual of the present voltage vector [A].

        Reuses the device currents evaluated for this iteration's stamps
        instead of recomputing them per device.
        """
        residual = driver_currents - extra_g * voltages - self._linear_operator @ voltages
        if self._unique_dev_nodes:
            residual[self._dev_w] -= device_currents
            residual[self._dev_b] += device_currents
        else:  # pragma: no cover
            np.subtract.at(residual, self._dev_w, device_currents)
            np.add.at(residual, self._dev_b, device_currents)
        return float(np.abs(residual).max())

    def _operating_point(
        self,
        voltages: np.ndarray,
        branch_v: np.ndarray,
        currents: np.ndarray,
        iterations: int,
        residual: float,
    ) -> OperatingPoint:
        geometry = self.netlist.geometry
        device_v = np.zeros((geometry.rows, geometry.columns))
        device_i = np.zeros_like(device_v)
        device_v[self._dev_rows, self._dev_cols] = branch_v
        device_i[self._dev_rows, self._dev_cols] = currents
        node_voltages = NodeVoltageMap(self.netlist.nodes, self._index, voltages.copy())
        return OperatingPoint(
            node_voltages_v=node_voltages,
            device_voltages_v=device_v,
            device_currents_a=device_i,
            device_powers_w=np.abs(device_v * device_i),
            iterations=iterations,
            residual_a=residual,
        )

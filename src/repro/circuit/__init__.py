"""Circuit-level crossbar framework (the paper's Virtuoso replacement).

The package models the three blocks of the paper's Fig. 2c: the memristive
crossbar (netlist + nonlinear nodal solver + array object), the memory
controller (init/stimuli handling, read and write-verify operations, pulse
generation) and the crosstalk hub (Eq. 5 temperature aggregation), plus a
transient engine that ties them together in the time domain.
"""

from .controller import MemoryController, ReadResult, StimulusOperation, WriteResult
from .crossbar import CrossbarArray, ThermalSnapshot
from .crosstalk_hub import CrosstalkHub
from .drivers import (
    FULL_SELECTED,
    HALF_SELECTED,
    UNSELECTED,
    BiasPattern,
    classify_cells,
    half_select_voltage,
    half_selected_cells,
    idle_bias,
    read_bias,
    write_bias,
)
from .netlist import (
    GROUND_NODE,
    CrossbarNetlist,
    CrosspointDevice,
    DriverPort,
    Resistor,
    build_crossbar_netlist,
)
from .pulses import (
    PulseTrain,
    RectangularPulse,
    StimulusSchedule,
    StimulusSegment,
    hammer_schedule,
)
from .readout import (
    ReadMargin,
    SneakPathReport,
    array_read_margins,
    minimum_read_window,
    read_margin,
    sensed_column_current,
    sneak_path_report,
)
from .reference import ReferenceCrossbarSolver, ReferenceTransientSimulator
from .solver import CrossbarSolver, NodeVoltageMap, OperatingPoint
from .transient import BitFlipEvent, TransientResult, TransientSimulator, TransientTrace

__all__ = [
    "MemoryController",
    "ReadResult",
    "WriteResult",
    "StimulusOperation",
    "CrossbarArray",
    "ThermalSnapshot",
    "CrosstalkHub",
    "BiasPattern",
    "write_bias",
    "read_bias",
    "idle_bias",
    "classify_cells",
    "half_selected_cells",
    "half_select_voltage",
    "FULL_SELECTED",
    "HALF_SELECTED",
    "UNSELECTED",
    "CrossbarNetlist",
    "CrosspointDevice",
    "DriverPort",
    "Resistor",
    "GROUND_NODE",
    "build_crossbar_netlist",
    "RectangularPulse",
    "PulseTrain",
    "StimulusSchedule",
    "StimulusSegment",
    "hammer_schedule",
    "ReadMargin",
    "SneakPathReport",
    "read_margin",
    "sensed_column_current",
    "sneak_path_report",
    "array_read_margins",
    "minimum_read_window",
    "CrossbarSolver",
    "NodeVoltageMap",
    "OperatingPoint",
    "ReferenceCrossbarSolver",
    "ReferenceTransientSimulator",
    "TransientSimulator",
    "TransientResult",
    "TransientTrace",
    "BitFlipEvent",
]

"""Memory controller of the circuit-level framework (paper Fig. 2c).

The controller is the component that "generates and drives the respective
pulse for a certain input line of the crossbar": it owns the init state and
the stimuli, translates logical read/write/hammer operations into bias
patterns and pulse schedules, and runs them on the crossbar.

Writes use a write-and-verify loop, which is both the standard industrial
practice for ReRAM and the behaviour the attack model assumes (the aggressor
cell is *already* in LRS, so hammer pulses do not move it further).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import PulseConfig
from ..errors import AddressingError, ConfigurationError
from .crossbar import CrossbarArray
from .drivers import BiasPattern, read_bias, write_bias
from .pulses import StimulusSchedule, StimulusSegment
from .transient import TransientSimulator

Cell = Tuple[int, int]


@dataclass
class WriteResult:
    """Outcome of a write-and-verify operation."""

    cell: Cell
    target_bit: int
    success: bool
    pulses_used: int
    final_x: float


@dataclass
class ReadResult:
    """Outcome of a read operation."""

    cell: Cell
    bit: int
    current_a: float
    voltage_v: float

    @property
    def resistance_ohm(self) -> float:
        """Apparent resistance seen at the sensed cell [Ohm]."""
        if abs(self.current_a) < 1e-18:
            return float("inf")
        return abs(self.voltage_v / self.current_a)


@dataclass
class StimulusOperation:
    """One entry of the stimuli file."""

    #: "write", "read" or "hammer".
    kind: str
    cell: Cell
    #: Bit value for writes, pulse count for hammer operations.
    value: int = 1
    pulse: Optional[PulseConfig] = None

    def __post_init__(self) -> None:
        if self.kind not in ("write", "read", "hammer"):
            raise ConfigurationError(f"unknown stimulus operation {self.kind!r}")
        self.cell = tuple(self.cell)  # type: ignore[assignment]


class MemoryController:
    """Row/column controller driving a :class:`CrossbarArray`."""

    def __init__(
        self,
        crossbar: CrossbarArray,
        write_pulse: PulseConfig = None,
        read_voltage_v: float = 0.2,
        read_threshold_a: float = None,
        scheme: str = "v_half",
        max_write_pulses: int = 64,
    ):
        self.crossbar = crossbar
        self.write_pulse = write_pulse if write_pulse is not None else PulseConfig(length_s=1e-6)
        self.read_voltage_v = read_voltage_v
        self.scheme = scheme
        self.max_write_pulses = max_write_pulses
        if read_threshold_a is None:
            read_threshold_a = self._default_read_threshold()
        self.read_threshold_a = read_threshold_a

    # ------------------------------------------------------------------
    # init / stimuli files
    # ------------------------------------------------------------------

    def load_init(self, source: Union[np.ndarray, Sequence[Sequence[int]], str, Path]) -> None:
        """Load the initial bit pattern ("init file")."""
        if isinstance(source, (str, Path)):
            data = json.loads(Path(source).read_text(encoding="utf-8"))
            bits = np.asarray(data["bits"], dtype=int)
        else:
            bits = np.asarray(source, dtype=int)
        self.crossbar.initialise_bits(bits)

    def save_init(self, path: Union[str, Path]) -> None:
        """Persist the current bit pattern as an init file."""
        payload = {"bits": self.crossbar.bit_map().tolist()}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def run_stimuli(self, operations: Sequence[StimulusOperation]) -> List[object]:
        """Execute a list of stimulus operations and collect their results."""
        results: List[object] = []
        for operation in operations:
            if operation.kind == "write":
                results.append(self.write(operation.cell, operation.value))
            elif operation.kind == "read":
                results.append(self.read(operation.cell))
            else:
                pulse = operation.pulse if operation.pulse is not None else self.write_pulse
                results.append(self.hammer(operation.cell, operation.value, pulse))
        return results

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def write(self, cell: Cell, bit: int, lrs_is_one: bool = True) -> WriteResult:
        """Write a bit with a write-and-verify pulse loop."""
        cell = tuple(cell)
        self.crossbar.geometry.validate_cell(*cell)
        if bit not in (0, 1):
            raise ConfigurationError("bit must be 0 or 1")
        wants_lrs = (bit == 1) == lrs_is_one
        amplitude = self.write_pulse.amplitude_v if wants_lrs else -self.write_pulse.amplitude_v
        target_threshold = 0.5

        pulses_used = 0
        for _ in range(self.max_write_pulses):
            if self._verify(cell, wants_lrs, target_threshold):
                break
            schedule = StimulusSchedule()
            bias = write_bias(self.crossbar.geometry, [cell], amplitude, scheme=self.scheme)
            schedule.append(StimulusSegment(0.0, self.write_pulse.length_s, label="write", payload=bias))
            simulator = TransientSimulator(self.crossbar, flip_threshold=target_threshold)
            simulator.run(schedule)
            pulses_used += 1
        success = self._verify(cell, wants_lrs, target_threshold)
        return WriteResult(
            cell=cell,
            target_bit=bit,
            success=success,
            pulses_used=pulses_used,
            final_x=self.crossbar.get_state(cell).x,
        )

    def read(self, cell: Cell) -> ReadResult:
        """Read a cell by sensing its bit-line current under the read bias."""
        cell = tuple(cell)
        self.crossbar.geometry.validate_cell(*cell)
        bias = read_bias(self.crossbar.geometry, cell, self.read_voltage_v, scheme=self.scheme)
        op = self.crossbar.solve_bias(bias)
        current = abs(op.cell_current(cell))
        bit = 1 if current >= self.read_threshold_a else 0
        return ReadResult(cell=cell, bit=bit, current_a=current, voltage_v=op.cell_voltage(cell))

    def read_all(self) -> np.ndarray:
        """Read every cell and return the bit matrix."""
        geometry = self.crossbar.geometry
        bits = np.zeros((geometry.rows, geometry.columns), dtype=int)
        for cell in geometry.iter_cells():
            bits[cell] = self.read(cell).bit
        return bits

    def hammer(self, cell: Cell, pulses: int, pulse: PulseConfig = None) -> StimulusSchedule:
        """Build (but do not run) the hammer schedule for a cell.

        The attack engine (:mod:`repro.attack.neurohammer`) drives hammering
        campaigns; the controller only exposes the pulse generation, which is
        what the real hardware controller would do.
        """
        cell = tuple(cell)
        self.crossbar.geometry.validate_cell(*cell)
        pulse = pulse if pulse is not None else self.write_pulse
        if pulses < 1:
            raise ConfigurationError("hammer needs at least one pulse")
        bias = write_bias(self.crossbar.geometry, [cell], pulse.amplitude_v, scheme=self.scheme)
        schedule = StimulusSchedule()
        for index in range(pulses):
            start = index * pulse.period_s
            schedule.append(StimulusSegment(start, pulse.length_s, label="hammer", payload=bias))
        return schedule

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _verify(self, cell: Cell, wants_lrs: bool, threshold: float) -> bool:
        x = self.crossbar.get_state(cell).x
        return x >= threshold if wants_lrs else x <= (1.0 - threshold)

    def _default_read_threshold(self) -> float:
        """Geometric mean of the LRS and HRS read currents of an isolated cell."""
        model = self.crossbar.model
        lrs = abs(model.current(self.read_voltage_v, model.lrs_state(self.crossbar.ambient_temperature_k)))
        hrs = abs(model.current(self.read_voltage_v, model.hrs_state(self.crossbar.ambient_temperature_k)))
        if lrs <= 0 or hrs <= 0:
            raise ConfigurationError("device model produces non-positive read currents")
        return float(np.sqrt(lrs * hrs))

"""Seed (pre-vectorization) reference implementations of the hot paths.

These are the original dense, per-device-Python-loop implementations of the
nodal solver and the transient stepping loop, kept verbatim so that

* the property/regression suites can validate the sparse vectorized paths
  element-for-element against the exact seed semantics, and
* ``benchmarks/bench_solver_scaling.py`` can measure the speedup against the
  honest baseline.

They are **not** used by any production path.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..devices.base import DeviceState, DeviceStateArrays, MemristorModel, bit_from_state
from ..errors import ConvergenceError
from .crossbar import CrossbarArray
from .drivers import BiasPattern
from .netlist import GROUND_NODE, CrossbarNetlist
from .pulses import StimulusSchedule
from .solver import OperatingPoint
from .transient import BitFlipEvent, TransientResult, TransientSimulator, TransientTrace

Cell = Tuple[int, int]


class ReferenceCrossbarSolver:
    """The seed dense Newton nodal solver (per-device Python stamp loops)."""

    def __init__(
        self,
        netlist: CrossbarNetlist,
        model: MemristorModel,
        max_iterations: int = 200,
        voltage_tolerance_v: float = 1e-7,
        residual_tolerance_a: float = 1e-9,
        max_step_v: float = 0.5,
    ):
        self.netlist = netlist
        self.model = model
        self.max_iterations = max_iterations
        self.voltage_tolerance_v = voltage_tolerance_v
        self.residual_tolerance_a = residual_tolerance_a
        self.max_step_v = max_step_v
        self._index: Dict[str, int] = {name: i for i, name in enumerate(netlist.nodes)}
        self._last_solution: Optional[np.ndarray] = None
        self._linear_matrix = self._assemble_linear_matrix()

    # -- assembly -----------------------------------------------------------

    def _assemble_linear_matrix(self) -> np.ndarray:
        n = self.netlist.node_count
        matrix = np.zeros((n, n))
        for resistor in self.netlist.resistors:
            g = resistor.conductance_s
            ia = self._index.get(resistor.node_a)
            ib = self._index.get(resistor.node_b)
            if ia is not None:
                matrix[ia, ia] += g
            if ib is not None:
                matrix[ib, ib] += g
            if ia is not None and ib is not None:
                matrix[ia, ib] -= g
                matrix[ib, ia] -= g
        return matrix

    def _driver_stamps(self, bias: BiasPattern) -> Tuple[np.ndarray, np.ndarray]:
        n = self.netlist.node_count
        extra_g = np.zeros(n)
        currents = np.zeros(n)
        for driver in self.netlist.drivers:
            if driver.line_type == "row":
                voltage = bias.row_voltage(driver.line_index)
            else:
                voltage = bias.column_voltage(driver.line_index)
            if voltage is None:
                continue
            g = 1.0 / driver.series_resistance_ohm
            idx = self._index[driver.node]
            extra_g[idx] += g
            currents[idx] += g * voltage
        return extra_g, currents

    # -- solving --------------------------------------------------------------

    def solve(
        self,
        bias: BiasPattern,
        states: Mapping[Cell, DeviceState],
        initial_guess: Optional[np.ndarray] = None,
    ) -> OperatingPoint:
        n = self.netlist.node_count
        if isinstance(states, DeviceStateArrays):
            # Accept the array-native container too, so a CrossbarArray's
            # solver can be swapped for this reference in validation runs.
            states = states.as_mapping()
        extra_g, driver_currents = self._driver_stamps(bias)

        if initial_guess is not None:
            voltages = np.array(initial_guess, dtype=float)
        elif self._last_solution is not None and len(self._last_solution) == n:
            voltages = self._last_solution.copy()
        else:
            voltages = np.zeros(n)

        device_index = [
            (
                device.cell,
                self._index[device.wordline_node],
                self._index[device.bitline_node],
            )
            for device in self.netlist.devices
        ]

        iterations = 0
        residual = np.inf
        for iterations in range(1, self.max_iterations + 1):
            matrix = self._linear_matrix.copy()
            matrix[np.diag_indices_from(matrix)] += extra_g
            rhs = driver_currents.copy()

            for cell, iw, ib in device_index:
                state = states[cell]
                branch_v = voltages[iw] - voltages[ib]
                current = self.model.current(branch_v, state)
                conductance = self.model.conductance(branch_v, state)
                equivalent = current - conductance * branch_v
                matrix[iw, iw] += conductance
                matrix[ib, ib] += conductance
                matrix[iw, ib] -= conductance
                matrix[ib, iw] -= conductance
                rhs[iw] -= equivalent
                rhs[ib] += equivalent

            new_voltages = np.linalg.solve(matrix, rhs)
            step = new_voltages - voltages
            max_step = np.abs(step).max() if len(step) else 0.0
            if max_step > self.max_step_v:
                step *= self.max_step_v / max_step
            voltages = voltages + step

            residual = self._kcl_residual(
                voltages, bias, states, extra_g, driver_currents, device_index
            )
            if max_step < self.voltage_tolerance_v and residual < self.residual_tolerance_a:
                break
        else:
            raise ConvergenceError(
                f"crossbar Newton solve did not converge after {self.max_iterations} iterations "
                f"(residual {residual:.3g} A)"
            )

        self._last_solution = voltages.copy()
        return self._operating_point(voltages, states, device_index, iterations, residual)

    # -- helpers ---------------------------------------------------------------

    def _kcl_residual(
        self,
        voltages: np.ndarray,
        bias: BiasPattern,
        states: Mapping[Cell, DeviceState],
        extra_g: np.ndarray,
        driver_currents: np.ndarray,
        device_index,
    ) -> float:
        injection = driver_currents - extra_g * voltages
        residual = injection.copy()
        for resistor in self.netlist.resistors:
            ia = self._index[resistor.node_a]
            ib = self._index[resistor.node_b]
            current = (voltages[ia] - voltages[ib]) * resistor.conductance_s
            residual[ia] -= current
            residual[ib] += current
        for cell, iw, ib in device_index:
            branch_v = voltages[iw] - voltages[ib]
            current = self.model.current(branch_v, states[cell])
            residual[iw] -= current
            residual[ib] += current
        return float(np.abs(residual).max())

    def _operating_point(
        self,
        voltages: np.ndarray,
        states: Mapping[Cell, DeviceState],
        device_index,
        iterations: int,
        residual: float,
    ) -> OperatingPoint:
        geometry = self.netlist.geometry
        device_v = np.zeros((geometry.rows, geometry.columns))
        device_i = np.zeros_like(device_v)
        for cell, iw, ib in device_index:
            branch_v = voltages[iw] - voltages[ib]
            device_v[cell] = branch_v
            device_i[cell] = self.model.current(branch_v, states[cell])
        node_voltages = {name: float(voltages[self._index[name]]) for name in self.netlist.nodes}
        node_voltages[GROUND_NODE] = 0.0
        return OperatingPoint(
            node_voltages_v=node_voltages,
            device_voltages_v=device_v,
            device_currents_a=device_i,
            device_powers_w=np.abs(device_v * device_i),
            iterations=iterations,
            residual_a=residual,
        )


class ReferenceTransientSimulator(TransientSimulator):
    """The seed per-cell-dict transient stepping loop.

    Runs the exact seed control flow (per-cell rate dicts, per-cell state
    advance, per-cell flip detection) through the Mapping-compatible state
    view of :class:`CrossbarArray`.  Electrical/thermal solves go through the
    crossbar exactly as in the vectorized engine, so any disagreement between
    the two isolates the transient-loop vectorization.
    """

    def run(
        self,
        schedule: StimulusSchedule,
        stop_on_flip_of: Optional[Cell] = None,
    ) -> TransientResult:
        crossbar = self.crossbar
        trace = TransientTrace()
        flips: List[BitFlipEvent] = []
        previous_bits = {
            cell: bit_from_state(state) for cell, state in crossbar.states.items()
        }
        time_s = 0.0
        steps = 0
        stop = False

        for segment in schedule:
            if stop:
                break
            bias = self._segment_bias(segment)
            remaining = segment.duration_s
            time_s = segment.start_s
            while remaining > 1e-21 and not stop:
                snapshot = crossbar.thermal_snapshot(bias)
                rates = self._state_rates(snapshot.operating_point.device_voltages_v)
                dt = self._choose_dt(rates, remaining, segment.duration_s)
                self._advance_states(rates, dt)
                time_s += dt
                remaining -= dt
                steps += 1

                new_flips = self._detect_flips(previous_bits, time_s)
                flips.extend(new_flips)
                if stop_on_flip_of is not None and any(
                    event.cell == tuple(stop_on_flip_of) for event in new_flips
                ):
                    stop = True

                if steps % self.record_every == 0 or stop or remaining <= 1e-21:
                    trace.append(
                        time_s,
                        crossbar.state_map(),
                        snapshot.filament_temperatures_k,
                        snapshot.operating_point.device_voltages_v,
                        segment.label,
                    )
            crossbar.reset_temperatures()

        return TransientResult(
            trace=trace, flip_events=flips, simulated_time_s=time_s, steps=steps
        )

    # -- seed per-cell helpers ------------------------------------------------

    def _state_rates(self, device_voltages_v: np.ndarray) -> Dict[Cell, float]:
        rates: Dict[Cell, float] = {}
        for cell in self.crossbar.cells():
            state = self.crossbar.states[cell]
            rates[cell] = self.crossbar.model.state_derivative(
                float(device_voltages_v[cell[0], cell[1]]), state
            )
        return rates

    def _choose_dt(self, rates: Dict[Cell, float], remaining_s: float, segment_s: float) -> float:
        dt = min(remaining_s, segment_s / self.min_steps_per_segment)
        fastest = max((abs(rate) for rate in rates.values()), default=0.0)
        if fastest > 0.0:
            dt = min(dt, self.max_dx_per_step / fastest)
        return max(dt, 1e-18)

    def _advance_states(self, rates: Dict[Cell, float], dt: float) -> None:
        for cell, rate in rates.items():
            state = self.crossbar.states[cell]
            state.x = self.crossbar.model.clamp_state(state.x + rate * dt)

    def _detect_flips(self, previous_bits: Dict[Cell, int], time_s: float) -> List[BitFlipEvent]:
        events: List[BitFlipEvent] = []
        for cell, state in self.crossbar.states.items():
            bit = bit_from_state(state, threshold=self.flip_threshold)
            if bit != previous_bits[cell]:
                direction = "set" if bit == 1 else "reset"
                events.append(
                    BitFlipEvent(time_s=time_s, cell=cell, direction=direction, state_x=state.x)
                )
                previous_bits[cell] = bit
        return events

"""Transient engine: time-domain simulation of the crossbar under stimuli.

This is the full-fidelity simulation path (the paper's circuit-level
framework run over a stimuli file): every time step re-solves the nonlinear
crossbar network for the active bias pattern, recomputes the electro-thermal
picture including crosstalk, and integrates every device's state ODE.  It is
used by the integration tests and the short demonstration examples; the
figure-scale sweeps use the quasi-static fast path in
:mod:`repro.attack.analysis`, which is validated against this engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..devices.base import bit_from_state
from ..errors import ConfigurationError
from .crossbar import CrossbarArray
from .drivers import BiasPattern, idle_bias
from .pulses import StimulusSchedule, StimulusSegment

Cell = Tuple[int, int]


@dataclass
class BitFlipEvent:
    """A victim cell crossing the flip threshold during a transient run."""

    time_s: float
    cell: Cell
    #: Direction of the flip: "set" (HRS -> LRS) or "reset" (LRS -> HRS).
    direction: str
    state_x: float


@dataclass
class TransientTrace:
    """Recorded time series of one transient simulation."""

    times_s: List[float] = field(default_factory=list)
    #: Per-sample (rows x columns) state maps.
    states: List[np.ndarray] = field(default_factory=list)
    #: Per-sample (rows x columns) filament temperature maps [K].
    temperatures_k: List[np.ndarray] = field(default_factory=list)
    #: Per-sample (rows x columns) device voltage maps [V].
    voltages_v: List[np.ndarray] = field(default_factory=list)
    #: Segment label active at each sample.
    labels: List[str] = field(default_factory=list)

    def cell_series(self, cell: Cell, quantity: str = "state") -> np.ndarray:
        """Time series of one cell ('state', 'temperature' or 'voltage')."""
        source = {
            "state": self.states,
            "temperature": self.temperatures_k,
            "voltage": self.voltages_v,
        }.get(quantity)
        if source is None:
            raise ConfigurationError(f"unknown quantity {quantity!r}")
        return np.array([sample[cell[0], cell[1]] for sample in source])

    def __len__(self) -> int:
        return len(self.times_s)


@dataclass
class TransientResult:
    """Outcome of a transient simulation."""

    trace: TransientTrace
    flip_events: List[BitFlipEvent]
    simulated_time_s: float
    steps: int

    def first_flip(self, cell: Optional[Cell] = None) -> Optional[BitFlipEvent]:
        """First flip event, optionally restricted to one cell."""
        for event in self.flip_events:
            if cell is None or event.cell == tuple(cell):
                return event
        return None


class TransientSimulator:
    """Explicit time-stepping simulator over a :class:`CrossbarArray`."""

    def __init__(
        self,
        crossbar: CrossbarArray,
        flip_threshold: float = 0.5,
        max_dx_per_step: float = 0.05,
        min_steps_per_segment: int = 1,
        record_every: int = 1,
    ):
        if not 0.0 < flip_threshold < 1.0:
            raise ConfigurationError("flip_threshold must be in (0, 1)")
        if not 0.0 < max_dx_per_step <= 0.5:
            raise ConfigurationError("max_dx_per_step must be in (0, 0.5]")
        self.crossbar = crossbar
        self.flip_threshold = flip_threshold
        self.max_dx_per_step = max_dx_per_step
        self.min_steps_per_segment = max(1, min_steps_per_segment)
        self.record_every = max(1, record_every)

    # ------------------------------------------------------------------

    def run(
        self,
        schedule: StimulusSchedule,
        stop_on_flip_of: Optional[Cell] = None,
    ) -> TransientResult:
        """Run the schedule and return the recorded trace and flip events.

        Args:
            schedule: Time-ordered stimulus segments whose payloads are
                :class:`BiasPattern` objects (None payloads mean idle bias).
            stop_on_flip_of: If given, the simulation ends as soon as this
                cell crosses the flip threshold.
        """
        crossbar = self.crossbar
        trace = TransientTrace()
        flips: List[BitFlipEvent] = []
        previous_bits = {cell: bit_from_state(state) for cell, state in crossbar.states.items()}
        time_s = 0.0
        steps = 0
        stop = False

        for segment in schedule:
            if stop:
                break
            bias = self._segment_bias(segment)
            remaining = segment.duration_s
            time_s = segment.start_s
            segment_steps = 0
            while remaining > 1e-21 and not stop:
                snapshot = crossbar.thermal_snapshot(bias)
                rates = self._state_rates(snapshot.operating_point.device_voltages_v)
                dt = self._choose_dt(rates, remaining, segment.duration_s)
                self._advance_states(rates, dt)
                time_s += dt
                remaining -= dt
                steps += 1
                segment_steps += 1

                new_flips = self._detect_flips(previous_bits, time_s)
                flips.extend(new_flips)
                if stop_on_flip_of is not None and any(
                    event.cell == tuple(stop_on_flip_of) for event in new_flips
                ):
                    stop = True

                if steps % self.record_every == 0 or stop or remaining <= 1e-21:
                    trace.times_s.append(time_s)
                    trace.states.append(crossbar.state_map())
                    trace.temperatures_k.append(snapshot.filament_temperatures_k.copy())
                    trace.voltages_v.append(snapshot.operating_point.device_voltages_v.copy())
                    trace.labels.append(segment.label)
            crossbar.reset_temperatures()

        return TransientResult(trace=trace, flip_events=flips, simulated_time_s=time_s, steps=steps)

    # ------------------------------------------------------------------

    def _segment_bias(self, segment: StimulusSegment) -> BiasPattern:
        if segment.payload is None:
            return idle_bias(self.crossbar.geometry, label=segment.label)
        if not isinstance(segment.payload, BiasPattern):
            raise ConfigurationError(
                f"stimulus segment {segment.label!r} carries a payload that is not a BiasPattern"
            )
        return segment.payload

    def _state_rates(self, device_voltages_v: np.ndarray) -> Dict[Cell, float]:
        rates: Dict[Cell, float] = {}
        for cell in self.crossbar.cells():
            state = self.crossbar.states[cell]
            rates[cell] = self.crossbar.model.state_derivative(
                float(device_voltages_v[cell[0], cell[1]]), state
            )
        return rates

    def _choose_dt(self, rates: Dict[Cell, float], remaining_s: float, segment_s: float) -> float:
        dt = min(remaining_s, segment_s / self.min_steps_per_segment)
        fastest = max((abs(rate) for rate in rates.values()), default=0.0)
        if fastest > 0.0:
            dt = min(dt, self.max_dx_per_step / fastest)
        return max(dt, 1e-18)

    def _advance_states(self, rates: Dict[Cell, float], dt: float) -> None:
        for cell, rate in rates.items():
            state = self.crossbar.states[cell]
            state.x = self.crossbar.model.clamp_state(state.x + rate * dt)

    def _detect_flips(self, previous_bits: Dict[Cell, int], time_s: float) -> List[BitFlipEvent]:
        events: List[BitFlipEvent] = []
        for cell, state in self.crossbar.states.items():
            bit = bit_from_state(state, threshold=self.flip_threshold)
            if bit != previous_bits[cell]:
                direction = "set" if bit == 1 else "reset"
                events.append(BitFlipEvent(time_s=time_s, cell=cell, direction=direction, state_x=state.x))
                previous_bits[cell] = bit
        return events

"""Transient engine: time-domain simulation of the crossbar under stimuli.

This is the full-fidelity simulation path (the paper's circuit-level
framework run over a stimuli file): every time step re-solves the nonlinear
crossbar network for the active bias pattern, recomputes the electro-thermal
picture including crosstalk, and integrates every device's state ODE.  It is
used by the integration tests and the short demonstration examples; the
figure-scale sweeps use the quasi-static fast path in
:mod:`repro.attack.analysis`, which is validated against this engine.

The stepping loop is array-native: state rates, state advance and flip
detection operate on whole ``(rows, columns)`` arrays through the device
model's batched kernel, and traces record into preallocated arrays grown
geometrically.  The seed per-cell-dict loop is preserved as
:class:`repro.circuit.reference.ReferenceTransientSimulator` and the
regression suite checks flip-event and trace agreement between the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..obs import get_audit, get_telemetry, get_watchdog
from .crossbar import CrossbarArray
from .drivers import BiasPattern, idle_bias
from .pulses import StimulusSchedule, StimulusSegment

Cell = Tuple[int, int]

#: Initial trace capacity; grown geometrically (x2) when exhausted.  Kept
#: small so short runs on large crossbars do not pay for unused slots.
_INITIAL_TRACE_CAPACITY = 4


@dataclass
class BitFlipEvent:
    """A victim cell crossing the flip threshold during a transient run."""

    time_s: float
    cell: Cell
    #: Direction of the flip: "set" (HRS -> LRS) or "reset" (LRS -> HRS).
    direction: str
    state_x: float


class TransientTrace:
    """Recorded time series of one transient simulation.

    Samples are stored in preallocated arrays that double in capacity when
    full (amortised O(1) appends, no per-sample Python list overhead).  The
    public attributes present trimmed views:

    * :attr:`times_s` — ``(n,)`` sample times [s],
    * :attr:`states` — ``(n, rows, columns)`` state maps,
    * :attr:`temperatures_k` — ``(n, rows, columns)`` filament temperatures,
    * :attr:`voltages_v` — ``(n, rows, columns)`` device voltages,
    * :attr:`labels` — per-sample segment labels.
    """

    def __init__(self) -> None:
        self._count = 0
        self._times: Optional[np.ndarray] = None
        self._states: Optional[np.ndarray] = None
        self._temperatures: Optional[np.ndarray] = None
        self._voltages: Optional[np.ndarray] = None
        self._labels: List[str] = []

    def _ensure_capacity(self, shape: Tuple[int, int]) -> None:
        if self._times is None:
            capacity = _INITIAL_TRACE_CAPACITY
            self._times = np.empty(capacity)
            self._states = np.empty((capacity, *shape))
            self._temperatures = np.empty((capacity, *shape))
            self._voltages = np.empty((capacity, *shape))
        elif self._count == self._times.shape[0]:
            capacity = 2 * self._times.shape[0]
            for name in ("_times", "_states", "_temperatures", "_voltages"):
                old = getattr(self, name)
                grown = np.empty((capacity, *old.shape[1:]))
                grown[: self._count] = old
                setattr(self, name, grown)

    def append(
        self,
        time_s: float,
        state_map: np.ndarray,
        temperature_map_k: np.ndarray,
        voltage_map_v: np.ndarray,
        label: str,
    ) -> None:
        """Record one sample (maps are copied into the trace storage)."""
        state_map = np.asarray(state_map)
        self._ensure_capacity(state_map.shape)
        i = self._count
        self._times[i] = time_s
        self._states[i] = state_map
        self._temperatures[i] = temperature_map_k
        self._voltages[i] = voltage_map_v
        self._labels.append(label)
        self._count += 1

    @property
    def times_s(self) -> np.ndarray:
        """Sample times [s]."""
        return self._times[: self._count] if self._times is not None else np.empty(0)

    @property
    def states(self) -> np.ndarray:
        """Per-sample (rows x columns) state maps."""
        return self._states[: self._count] if self._states is not None else np.empty((0, 0, 0))

    @property
    def temperatures_k(self) -> np.ndarray:
        """Per-sample (rows x columns) filament temperature maps [K]."""
        return (
            self._temperatures[: self._count]
            if self._temperatures is not None
            else np.empty((0, 0, 0))
        )

    @property
    def voltages_v(self) -> np.ndarray:
        """Per-sample (rows x columns) device voltage maps [V]."""
        return self._voltages[: self._count] if self._voltages is not None else np.empty((0, 0, 0))

    @property
    def labels(self) -> List[str]:
        """Segment label active at each sample."""
        return self._labels

    def cell_series(self, cell: Cell, quantity: str = "state") -> np.ndarray:
        """Time series of one cell ('state', 'temperature' or 'voltage')."""
        source = {
            "state": self.states,
            "temperature": self.temperatures_k,
            "voltage": self.voltages_v,
        }.get(quantity)
        if source is None:
            raise ConfigurationError(f"unknown quantity {quantity!r}")
        if len(source) == 0:
            return np.empty(0)
        return np.array(source[:, cell[0], cell[1]])

    def __len__(self) -> int:
        return self._count


@dataclass
class TransientResult:
    """Outcome of a transient simulation."""

    trace: TransientTrace
    flip_events: List[BitFlipEvent]
    simulated_time_s: float
    steps: int

    def first_flip(self, cell: Optional[Cell] = None) -> Optional[BitFlipEvent]:
        """First flip event, optionally restricted to one cell."""
        for event in self.flip_events:
            if cell is None or event.cell == tuple(cell):
                return event
        return None


class TransientSimulator:
    """Explicit time-stepping simulator over a :class:`CrossbarArray`.

    The per-step work — state rates, adaptive step choice, state advance,
    flip detection — runs on whole arrays; there are no per-cell Python
    loops (flip *events* are materialised per changed cell only, which is
    empty on almost every step).
    """

    def __init__(
        self,
        crossbar: CrossbarArray,
        flip_threshold: float = 0.5,
        max_dx_per_step: float = 0.05,
        min_steps_per_segment: int = 1,
        record_every: int = 1,
    ):
        if not 0.0 < flip_threshold < 1.0:
            raise ConfigurationError("flip_threshold must be in (0, 1)")
        if not 0.0 < max_dx_per_step <= 0.5:
            raise ConfigurationError("max_dx_per_step must be in (0, 0.5]")
        self.crossbar = crossbar
        self.flip_threshold = flip_threshold
        self.max_dx_per_step = max_dx_per_step
        self.min_steps_per_segment = max(1, min_steps_per_segment)
        self.record_every = max(1, record_every)

    # ------------------------------------------------------------------

    def run(
        self,
        schedule: StimulusSchedule,
        stop_on_flip_of: Optional[Cell] = None,
    ) -> TransientResult:
        """Run the schedule and return the recorded trace and flip events.

        Args:
            schedule: Time-ordered stimulus segments whose payloads are
                :class:`BiasPattern` objects (None payloads mean idle bias).
            stop_on_flip_of: If given, the simulation ends as soon as this
                cell crosses the flip threshold.
        """
        tel = get_telemetry()
        with tel.span("transient.run"):
            return self._run(schedule, stop_on_flip_of, tel)

    def _run(
        self,
        schedule: StimulusSchedule,
        stop_on_flip_of: Optional[Cell],
        tel,
    ) -> TransientResult:
        crossbar = self.crossbar
        state = crossbar.state
        batched = crossbar.model.batched()
        trace = TransientTrace()
        flips: List[BitFlipEvent] = []
        target_cell = tuple(stop_on_flip_of) if stop_on_flip_of is not None else None
        # Initial bits use the 0.5 decode threshold (bit_from_state's
        # default), not self.flip_threshold — mirroring the seed engine so
        # flip events stay element-for-element identical for any threshold.
        previous_bits = state.x >= 0.5
        time_s = 0.0
        steps = 0
        stop = False

        audit = get_audit()
        watchdog = get_watchdog()
        for segment_index, segment in enumerate(schedule):
            if stop:
                break
            bias = self._segment_bias(segment)
            remaining = segment.duration_s
            time_s = segment.start_s
            while remaining > 1e-21 and not stop:
                snapshot = crossbar.thermal_snapshot(bias)
                voltages = snapshot.operating_point.device_voltages_v
                rates = batched.state_derivative(voltages, state.x, state.temperature_k)
                dt = self._choose_dt(rates, remaining, segment.duration_s)
                if tel.enabled:
                    tel.observe("transient.dt_s", dt)
                state.x[...] = batched.clamp_state(state.x + rates * dt)
                time_s += dt
                remaining -= dt
                steps += 1

                bits = state.x >= self.flip_threshold
                changed = bits != previous_bits
                if changed.any():
                    for row, column in np.argwhere(changed):
                        cell = (int(row), int(column))
                        flips.append(
                            BitFlipEvent(
                                time_s=time_s,
                                cell=cell,
                                direction="set" if bits[cell] else "reset",
                                state_x=float(state.x[cell]),
                            )
                        )
                        if target_cell is not None and cell == target_cell:
                            stop = True
                    previous_bits[changed] = bits[changed]

                if steps % self.record_every == 0 or stop or remaining <= 1e-21:
                    # append copies into the trace's preallocated storage.
                    trace.append(
                        time_s,
                        state.x,
                        snapshot.filament_temperatures_k,
                        voltages,
                        segment.label,
                    )
            if watchdog.enabled:
                watchdog.check_array("transient.segment", "state_x", state.x)
                watchdog.check_array("transient.segment", "temperature_k", state.temperature_k)
            if audit.enabled:
                # Segment boundary: the trace contribution of one stimulus
                # segment is fully determined here (device states, filament
                # temperatures, accumulated flips).
                audit.record(
                    "transient.segment",
                    key=segment_index,
                    arrays={
                        "state_x": state.x,
                        "temperature_k": state.temperature_k,
                    },
                    meta={
                        "label": segment.label,
                        "steps": steps,
                        "flips": len(flips),
                        "time_s": time_s,
                    },
                )
            crossbar.reset_temperatures()

        if tel.enabled:
            tel.count("transient.runs")
            tel.count("transient.steps", steps)
            tel.count("transient.flips", len(flips))

        return TransientResult(trace=trace, flip_events=flips, simulated_time_s=time_s, steps=steps)

    # ------------------------------------------------------------------

    def _segment_bias(self, segment: StimulusSegment) -> BiasPattern:
        if segment.payload is None:
            return idle_bias(self.crossbar.geometry, label=segment.label)
        if not isinstance(segment.payload, BiasPattern):
            raise ConfigurationError(
                f"stimulus segment {segment.label!r} carries a payload that is not a BiasPattern"
            )
        return segment.payload

    def _choose_dt(self, rates: np.ndarray, remaining_s: float, segment_s: float) -> float:
        dt = min(remaining_s, segment_s / self.min_steps_per_segment)
        fastest = float(np.abs(rates).max()) if rates.size else 0.0
        if fastest > 0.0:
            dt = min(dt, self.max_dx_per_step / fastest)
        return max(dt, 1e-18)

"""Crosstalk hub: thermal coupling between crossbar cells (paper Eq. 5).

The hub mirrors the Verilog-A module of the paper's Virtuoso framework: it
receives the filament temperature of every cell and returns, per cell, the
additional temperature contributed by all the other cells, weighted by the
alpha values extracted from the crossbar simulation:

    T_in(i) = sum_j alpha_ji * (T_out(j) - T0)

The paper states Eq. 5 in terms of absolute temperatures; the implementation
uses temperature *rises* so that a crossbar sitting idle at ambient does not
heat itself — this is the physically consistent reading of the alpha
regression (Eq. 4), which relates neighbour temperature rises to the
aggressor's dissipated power.

The sum is applied through a structured
:class:`~repro.thermal.operator.CrosstalkOperator` selected per coupling
model: translation-invariant models (all three shipped ones) run as an
O(N log N) FFT convolution or an O(taps * N) stencil, so the hub never
materialises the O(cells^2) alpha table; custom non-stationary models fall
back to the dense table automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..config import CrossbarGeometry
from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K
from ..errors import ConfigurationError
from ..obs import get_telemetry
from ..thermal.coupling import CouplingModel
from ..thermal.operator import CrosstalkOperator, make_crosstalk_operator

Cell = Tuple[int, int]


@dataclass
class CrosstalkHub:
    """Aggregates thermal crosstalk contributions between cells."""

    coupling: CouplingModel
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K
    #: Operator backend: "auto" (structured where the coupling model states
    #: an offset kernel, dense otherwise), "fft", "stencil" or "dense".
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.ambient_temperature_k <= 0:
            raise ConfigurationError("ambient temperature must be positive")
        self.operator: CrosstalkOperator = make_crosstalk_operator(
            self.coupling, backend=self.backend
        )
        # Metric names are precomputed so the per-solve apply path does not
        # build strings when telemetry is enabled.
        self._apply_metric = "crosstalk.apply." + self.operator.backend
        self._apply_single_metric = "crosstalk.apply_single." + self.operator.backend

    @property
    def geometry(self) -> CrossbarGeometry:
        """Geometry of the underlying crossbar."""
        return self.coupling.geometry

    @property
    def operator_backend(self) -> str:
        """Backend the selected operator runs on ("fft", "stencil", "dense")."""
        return self.operator.backend

    @property
    def alpha_state_bytes(self) -> int:
        """Memory held by the operator's alpha state (kernel or dense table)."""
        return self.operator.state_bytes

    def alpha_between(self, aggressor: Cell, victim: Cell) -> float:
        """Coupling coefficient from aggressor to victim."""
        geometry = self.geometry
        geometry.validate_cell(*aggressor)
        geometry.validate_cell(*victim)
        return self.operator.alpha_between(tuple(aggressor), tuple(victim))

    def _rises(self, filament_temperatures_k: np.ndarray) -> np.ndarray:
        geometry = self.geometry
        expected = (geometry.rows, geometry.columns)
        if filament_temperatures_k.shape != expected:
            raise ConfigurationError(
                f"temperature map shape {filament_temperatures_k.shape} does not match {expected}"
            )
        return np.maximum(filament_temperatures_k - self.ambient_temperature_k, 0.0)

    def additional_temperatures(
        self, filament_temperatures_k: np.ndarray
    ) -> np.ndarray:
        """Per-cell additional temperature from crosstalk [K] (Eq. 5).

        Args:
            filament_temperatures_k: (rows x columns) array of the cells'
                filament temperatures *excluding* crosstalk (self-heating on
                top of ambient).
        """
        tel = get_telemetry()
        if tel.enabled:
            tel.count(self._apply_metric)
        return self.operator.apply(self._rises(filament_temperatures_k))

    def additional_temperature_for(
        self, victim: Cell, filament_temperatures_k: np.ndarray
    ) -> float:
        """Additional temperature of a single victim cell [K].

        Single-victim fast path: evaluates one output cell in O(cells)
        through the operator instead of computing the full array and
        indexing it.
        """
        self.geometry.validate_cell(*victim)
        tel = get_telemetry()
        if tel.enabled:
            tel.count(self._apply_single_metric)
        return self.operator.apply_single(
            tuple(victim), self._rises(filament_temperatures_k)
        )

    def aggressor_contribution(
        self, aggressor: Cell, victim: Cell, aggressor_temperature_k: float
    ) -> float:
        """Temperature delivered to ``victim`` by a single hot aggressor [K]."""
        rise = max(aggressor_temperature_k - self.ambient_temperature_k, 0.0)
        return self.alpha_between(aggressor, victim) * rise

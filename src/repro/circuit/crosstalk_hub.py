"""Crosstalk hub: thermal coupling between crossbar cells (paper Eq. 5).

The hub mirrors the Verilog-A module of the paper's Virtuoso framework: it
receives the filament temperature of every cell and returns, per cell, the
additional temperature contributed by all the other cells, weighted by the
alpha values extracted from the crossbar simulation:

    T_in(i) = sum_j alpha_ji * (T_out(j) - T0)

The paper states Eq. 5 in terms of absolute temperatures; the implementation
uses temperature *rises* so that a crossbar sitting idle at ambient does not
heat itself — this is the physically consistent reading of the alpha
regression (Eq. 4), which relates neighbour temperature rises to the
aggressor's dissipated power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..config import CrossbarGeometry
from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K
from ..errors import ConfigurationError
from ..thermal.coupling import CouplingModel

Cell = Tuple[int, int]


@dataclass
class CrosstalkHub:
    """Aggregates thermal crosstalk contributions between cells."""

    coupling: CouplingModel
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K

    def __post_init__(self) -> None:
        if self.ambient_temperature_k <= 0:
            raise ConfigurationError("ambient temperature must be positive")
        geometry = self.coupling.geometry
        # Pre-compute the full coupling tensor alpha[aggressor, victim] once;
        # the coupling model builds it vectorized where it has a closed-form
        # kernel (the diagonal is zeroed: a cell does not crosstalk itself).
        cells = list(geometry.iter_cells())
        self._cell_index = {cell: index for index, cell in enumerate(cells)}
        self._alpha = np.array(self.coupling.alpha_table(), dtype=float)
        np.fill_diagonal(self._alpha, 0.0)

    @property
    def geometry(self) -> CrossbarGeometry:
        """Geometry of the underlying crossbar."""
        return self.coupling.geometry

    def alpha_between(self, aggressor: Cell, victim: Cell) -> float:
        """Coupling coefficient from aggressor to victim."""
        return float(self._alpha[self._cell_index[tuple(aggressor)], self._cell_index[tuple(victim)]])

    def additional_temperatures(
        self, filament_temperatures_k: np.ndarray
    ) -> np.ndarray:
        """Per-cell additional temperature from crosstalk [K] (Eq. 5).

        Args:
            filament_temperatures_k: (rows x columns) array of the cells'
                filament temperatures *excluding* crosstalk (self-heating on
                top of ambient).
        """
        geometry = self.geometry
        expected = (geometry.rows, geometry.columns)
        if filament_temperatures_k.shape != expected:
            raise ConfigurationError(
                f"temperature map shape {filament_temperatures_k.shape} does not match {expected}"
            )
        rises = np.maximum(filament_temperatures_k - self.ambient_temperature_k, 0.0).ravel()
        additional = self._alpha.T @ rises
        return additional.reshape(expected)

    def additional_temperature_for(
        self, victim: Cell, filament_temperatures_k: np.ndarray
    ) -> float:
        """Additional temperature of a single victim cell [K]."""
        return float(self.additional_temperatures(filament_temperatures_k)[victim[0], victim[1]])

    def aggressor_contribution(
        self, aggressor: Cell, victim: Cell, aggressor_temperature_k: float
    ) -> float:
        """Temperature delivered to ``victim`` by a single hot aggressor [K]."""
        rise = max(aggressor_temperature_k - self.ambient_temperature_k, 0.0)
        return self.alpha_between(aggressor, victim) * rise

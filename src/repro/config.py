"""Configuration dataclasses shared across the simulation stack.

The paper's framework is parameterised through "configuration files and the
standard GUI of the Cadence Virtuoso tool" (Sec. IV-B).  This module provides
the equivalent: plain dataclasses with validation plus JSON round-tripping, so
experiments are reproducible from a single serialisable description.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Type, TypeVar, Union

from .constants import DEFAULT_AMBIENT_TEMPERATURE_K, DEFAULT_SET_VOLTAGE_V
from .errors import ConfigurationError, GeometryError

T = TypeVar("T", bound="JsonConfig")


@dataclass
class JsonConfig:
    """Base class providing dict/JSON round-trip for configuration objects."""

    def to_dict(self) -> Dict[str, Any]:
        """Return the configuration as a plain dictionary."""
        return asdict(self)

    def to_json(self, path: Optional[Union[str, Path]] = None, indent: int = 2) -> str:
        """Serialise to JSON.  If ``path`` is given the JSON is also written there."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    @classmethod
    def from_dict(cls: Type[T], data: Mapping[str, Any]) -> T:
        """Build a configuration from a dictionary, rejecting unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"{cls.__name__}: unknown configuration keys {sorted(unknown)}"
            )
        return cls(**data)  # type: ignore[arg-type]

    @classmethod
    def from_json(cls: Type[T], source: Union[str, Path]) -> T:
        """Build a configuration from a JSON string or a path to a JSON file."""
        if isinstance(source, Path) or (isinstance(source, str) and source.strip().endswith(".json")):
            text = Path(source).read_text(encoding="utf-8")
        else:
            text = str(source)
        return cls.from_dict(json.loads(text))


@dataclass
class CrossbarGeometry(JsonConfig):
    """Physical geometry of a passive memristive crossbar.

    The defaults reproduce the paper's setup: a 5x5 crossbar with 50 nm
    electrode spacing and the filament dimensions given in Fig. 2b
    (diameter 30 nm, height 5 nm).
    """

    rows: int = 5
    columns: int = 5
    #: Width of a word/bit line electrode [m].
    electrode_width_m: float = 50e-9
    #: Gap between the electrodes of two adjacent cells [m] (the paper's
    #: "electrode spacing", swept from 10 nm to 90 nm in Fig. 3b).
    electrode_spacing_m: float = 50e-9
    #: Electrode metal thickness [m].
    electrode_thickness_m: float = 20e-9
    #: Thickness of the switching oxide layer between the electrodes [m].
    oxide_thickness_m: float = 5e-9
    #: Thickness of the SiO2 layer between crossbar and substrate [m].
    insulator_thickness_m: float = 100e-9
    #: Thickness of the silicon substrate slab included in the thermal model [m].
    substrate_thickness_m: float = 200e-9
    #: Conductive filament radius [m] (Fig. 2b: diameter 30 nm).
    filament_radius_m: float = 15e-9
    #: Conductive filament height [m] (Fig. 2b: 5 nm).
    filament_height_m: float = 5e-9

    def __post_init__(self) -> None:
        if self.rows < 1 or self.columns < 1:
            raise GeometryError("crossbar must have at least one row and one column")
        positive_fields = (
            "electrode_width_m",
            "electrode_spacing_m",
            "electrode_thickness_m",
            "oxide_thickness_m",
            "insulator_thickness_m",
            "substrate_thickness_m",
            "filament_radius_m",
            "filament_height_m",
        )
        for name in positive_fields:
            if getattr(self, name) <= 0.0:
                raise GeometryError(f"{name} must be positive, got {getattr(self, name)!r}")
        if 2.0 * self.filament_radius_m > self.electrode_width_m:
            raise GeometryError("filament diameter cannot exceed the electrode width")

    @property
    def pitch_m(self) -> float:
        """Centre-to-centre distance between adjacent cells [m]."""
        return self.electrode_width_m + self.electrode_spacing_m

    @property
    def cell_count(self) -> int:
        """Total number of crosspoint devices."""
        return self.rows * self.columns

    def cell_centre(self, row: int, column: int) -> Tuple[float, float]:
        """Return the in-plane (x, y) coordinate of a cell centre [m]."""
        self.validate_cell(row, column)
        x = (column + 0.5) * self.pitch_m
        y = (row + 0.5) * self.pitch_m
        return x, y

    def cell_distance(self, a: Tuple[int, int], b: Tuple[int, int]) -> float:
        """Euclidean centre-to-centre distance between two cells [m]."""
        xa, ya = self.cell_centre(*a)
        xb, yb = self.cell_centre(*b)
        return float(((xa - xb) ** 2 + (ya - yb) ** 2) ** 0.5)

    def validate_cell(self, row: int, column: int) -> None:
        """Raise :class:`GeometryError` if (row, column) is outside the array."""
        if not (0 <= row < self.rows and 0 <= column < self.columns):
            raise GeometryError(
                f"cell ({row}, {column}) outside {self.rows}x{self.columns} crossbar"
            )

    def iter_cells(self) -> Iterable[Tuple[int, int]]:
        """Iterate over all (row, column) coordinates in row-major order."""
        for row in range(self.rows):
            for column in range(self.columns):
                yield row, column

    def centre_cell(self) -> Tuple[int, int]:
        """The middle cell of the array — the paper's default aggressor."""
        return self.rows // 2, self.columns // 2


@dataclass
class WireParameters(JsonConfig):
    """Electrical parameters of the word/bit line interconnect."""

    #: Resistance of one wire segment between adjacent crosspoints [Ohm].
    segment_resistance_ohm: float = 2.5
    #: Output resistance of a line driver [Ohm].
    driver_resistance_ohm: float = 50.0

    def __post_init__(self) -> None:
        if self.segment_resistance_ohm < 0.0:
            raise ConfigurationError("segment_resistance_ohm must be non-negative")
        if self.driver_resistance_ohm < 0.0:
            raise ConfigurationError("driver_resistance_ohm must be non-negative")


@dataclass
class ThermalSolverConfig(JsonConfig):
    """Settings for the finite-volume electro-thermal crossbar solver."""

    #: In-plane grid resolution [m].
    lateral_resolution_m: float = 20e-9
    #: Vertical grid resolution [m].
    vertical_resolution_m: float = 20e-9
    #: Ambient / heat-sink temperature applied at the substrate base [K].
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K
    #: Number of points used for the power sweep when extracting alpha values.
    power_sweep_points: int = 5
    #: Maximum SET voltage used for the power sweep [V].
    max_set_voltage_v: float = DEFAULT_SET_VOLTAGE_V

    def __post_init__(self) -> None:
        if self.lateral_resolution_m <= 0 or self.vertical_resolution_m <= 0:
            raise ConfigurationError("thermal grid resolutions must be positive")
        if self.ambient_temperature_k <= 0:
            raise ConfigurationError("ambient temperature must be positive")
        if self.power_sweep_points < 2:
            raise ConfigurationError("power sweep needs at least two points")
        if self.max_set_voltage_v <= 0:
            raise ConfigurationError("max_set_voltage_v must be positive")


@dataclass
class PulseConfig(JsonConfig):
    """A rectangular write pulse as defined in Sec. III of the paper."""

    amplitude_v: float = DEFAULT_SET_VOLTAGE_V
    length_s: float = 50e-9
    #: Fraction of the period during which the pulse is active.
    duty_cycle: float = 0.5

    def __post_init__(self) -> None:
        if self.length_s <= 0:
            raise ConfigurationError("pulse length must be positive")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ConfigurationError("duty cycle must be in (0, 1]")

    @property
    def period_s(self) -> float:
        """Full pulse period including the inactive part [s]."""
        return self.length_s / self.duty_cycle

    @property
    def idle_s(self) -> float:
        """Inactive time per period [s]."""
        return self.period_s - self.length_s


#: Names accepted by :attr:`AttackConfig.pattern` (the standard pattern set
#: of :mod:`repro.attack.patterns`).
STANDARD_PATTERN_NAMES = ("single", "double_row", "double_column", "quad", "row_sweep")


@dataclass
class AttackConfig(JsonConfig):
    """Configuration of a NeuroHammer attack campaign."""

    #: Aggressor cells as (row, column) pairs; hammered with the full pulse.
    aggressors: List[Tuple[int, int]] = field(default_factory=lambda: [(2, 2)])
    #: Optional explicit victim cell; by default every half-selected cell is a
    #: potential victim and the first one to flip ends the campaign.
    victim: Optional[Tuple[int, int]] = None
    #: Optional named standard pattern ("single", "double_row", "double_column",
    #: "quad", "row_sweep").  When set, the pattern's aggressor/victim/phase
    #: layout is derived from the crossbar geometry (around ``victim`` if
    #: given) and the ``aggressors`` field is ignored.
    pattern: Optional[str] = None
    pulse: PulseConfig = field(default_factory=PulseConfig)
    #: Write scheme used to bias the array ("v_half" or "v_third").
    bias_scheme: str = "v_half"
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K
    #: Upper bound on hammer pulses before the campaign is declared failed.
    max_pulses: int = 10_000_000
    #: Normalised state threshold above which a victim counts as flipped
    #: (0 = pristine HRS, 1 = full LRS).
    flip_threshold: float = 0.5

    def __post_init__(self) -> None:
        if not self.aggressors:
            raise ConfigurationError("attack needs at least one aggressor cell")
        self.aggressors = [tuple(cell) for cell in self.aggressors]  # type: ignore[assignment]
        if self.victim is not None:
            self.victim = tuple(self.victim)  # type: ignore[assignment]
            if self.pattern is None and self.victim in self.aggressors:
                raise ConfigurationError("victim cell cannot also be an aggressor")
        if isinstance(self.pulse, dict):
            self.pulse = PulseConfig.from_dict(self.pulse)
        if self.pattern is not None and self.pattern not in STANDARD_PATTERN_NAMES:
            raise ConfigurationError(
                f"unknown attack pattern {self.pattern!r}; expected one of {STANDARD_PATTERN_NAMES}"
            )
        if self.bias_scheme not in ("v_half", "v_third"):
            raise ConfigurationError(f"unknown bias scheme {self.bias_scheme!r}")
        if self.ambient_temperature_k <= 0:
            raise ConfigurationError("ambient temperature must be positive")
        if self.max_pulses < 1:
            raise ConfigurationError("max_pulses must be at least 1")
        if not 0.0 < self.flip_threshold < 1.0:
            raise ConfigurationError("flip_threshold must be in (0, 1)")


@dataclass
class SimulationConfig(JsonConfig):
    """Top-level bundle tying the geometry, wires and thermal setup together."""

    geometry: CrossbarGeometry = field(default_factory=CrossbarGeometry)
    wires: WireParameters = field(default_factory=WireParameters)
    thermal: ThermalSolverConfig = field(default_factory=ThermalSolverConfig)

    def __post_init__(self) -> None:
        if isinstance(self.geometry, dict):
            self.geometry = CrossbarGeometry.from_dict(self.geometry)
        if isinstance(self.wires, dict):
            self.wires = WireParameters.from_dict(self.wires)
        if isinstance(self.thermal, dict):
            self.thermal = ThermalSolverConfig.from_dict(self.thermal)

"""Ablation experiments for the design choices called out in DESIGN.md.

* ABL1 — alpha source: calibrated analytic kernel vs finite-volume extraction
  vs lumped thermal network.  Shows how the crosstalk coefficients (and the
  resulting pulse counts) depend on the thermal model fidelity.
* ABL2 — device model: the JART-style VCM model vs the temperature-agnostic
  linear-ion-drift baseline.  Shows that without thermally accelerated
  kinetics the attack does not work, i.e. the thermal mechanism is essential.
* ABL3 — bias scheme: V/2 vs V/3.  Quantifies the standard mitigation knob.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..attack.neurohammer import NeuroHammer, hammer_once
from ..attack.patterns import single_aggressor
from ..config import AttackConfig, CrossbarGeometry, PulseConfig, ThermalSolverConfig
from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K
from ..circuit.crossbar import CrossbarArray
from ..devices.kinetics import pulses_to_switch
from ..devices.linear_ion_drift import LinearIonDriftModel
from ..thermal.coupling import AnalyticCouplingModel, coupling_from_extraction
from ..thermal.fdm import HeatSolver
from ..thermal.geometry import build_voxel_model
from ..thermal.alpha import extract_alpha_values
from ..thermal.network import ThermalResistanceNetwork
from ..units import ns
from .base import ExperimentResult


def run_alpha_source_ablation(
    pulse_length_s: float = ns(50),
    lateral_resolution_m: float = 25e-9,
    max_pulses: int = 50_000_000,
) -> ExperimentResult:
    """ABL1 — compare analytic, FDM-extracted and network alpha values."""
    geometry = CrossbarGeometry()
    aggressor = geometry.centre_cell()
    victim = (aggressor[0], aggressor[1] + 1)

    result = ExperimentResult(
        name="ablation_alpha_source",
        description="Crosstalk coefficient source: analytic vs finite-volume vs thermal network",
        columns=["source", "alpha_nearest_neighbour", "pulses_to_flip", "flipped"],
        metadata={"pulse_length_ns": pulse_length_s * 1e9},
    )

    sources = {}
    sources["analytic"] = AnalyticCouplingModel(geometry)

    voxel = build_voxel_model(geometry, ThermalSolverConfig(
        lateral_resolution_m=lateral_resolution_m, vertical_resolution_m=lateral_resolution_m
    ))
    extraction = extract_alpha_values(HeatSolver(voxel), selected_cell=aggressor, points=3)
    sources["finite_volume"] = coupling_from_extraction(geometry, extraction)

    network = ThermalResistanceNetwork(geometry)
    sources["thermal_network"] = coupling_from_extraction(
        geometry, network.extract_alpha_values(selected_cell=aggressor)
    )

    pattern = single_aggressor(geometry)
    for name, coupling in sources.items():
        crossbar = CrossbarArray(geometry=geometry, coupling=coupling)
        attack = NeuroHammer(crossbar)
        config = AttackConfig(
            aggressors=[pattern.aggressors[0]],
            victim=pattern.victim,
            pulse=PulseConfig(length_s=pulse_length_s),
            max_pulses=max_pulses,
        )
        outcome = attack.run(pattern=pattern, config=config)
        result.add_row(
            source=name,
            alpha_nearest_neighbour=coupling.alpha_between(aggressor, victim),
            pulses_to_flip=outcome.pulses,
            flipped=outcome.flipped,
        )
    return result


def run_device_model_ablation(
    pulse_length_s: float = ns(50),
    crosstalk_temperature_k: float = 75.0,
    max_pulses: int = 1_000_000,
) -> ExperimentResult:
    """ABL2 — JART-style VCM model vs temperature-agnostic linear ion drift.

    Both models are exposed to the same victim stress (half-select voltage
    plus the crosstalk temperature); only the VCM model's kinetics respond to
    the temperature, so only it flips within the budget when hammered faster
    than the drift baseline would allow.
    """
    from ..devices.jart_vcm import JartVcmModel

    result = ExperimentResult(
        name="ablation_device_model",
        description="Device model ablation: thermally accelerated VCM vs linear ion drift",
        columns=["model", "pulses_with_crosstalk", "pulses_without_crosstalk", "thermal_acceleration"],
        metadata={
            "pulse_length_ns": pulse_length_s * 1e9,
            "crosstalk_temperature_k": crosstalk_temperature_k,
        },
    )
    half_select = 1.05 / 2.0
    for name, model in (("jart_vcm", JartVcmModel()), ("linear_ion_drift", LinearIonDriftModel())):
        hot = pulses_to_switch(
            model, half_select, pulse_length_s, 0.0, 0.5,
            crosstalk_temperature_k=crosstalk_temperature_k, max_pulses=max_pulses,
        )
        cold = pulses_to_switch(
            model, half_select, pulse_length_s, 0.0, 0.5,
            crosstalk_temperature_k=0.0, max_pulses=max_pulses,
        )
        acceleration = (cold.pulses / hot.pulses) if hot.flipped and cold.pulses else 1.0
        result.add_row(
            model=name,
            pulses_with_crosstalk=hot.pulses if hot.flipped else max_pulses,
            pulses_without_crosstalk=cold.pulses if cold.flipped else max_pulses,
            thermal_acceleration=acceleration,
        )
    return result


def run_bias_scheme_ablation(
    pulse_length_s: float = ns(50),
    max_pulses: int = 50_000_000,
) -> ExperimentResult:
    """ABL3 — V/2 vs V/3 biasing of the unselected lines."""
    result = ExperimentResult(
        name="ablation_bias_scheme",
        description="Write scheme ablation: V/2 (paper) vs V/3 (mitigation)",
        columns=["scheme", "pulses_to_flip", "flipped", "victim_temperature_k"],
        metadata={"pulse_length_ns": pulse_length_s * 1e9},
    )
    for scheme in ("v_half", "v_third"):
        outcome = hammer_once(
            pulse_length_s=pulse_length_s, bias_scheme=scheme, max_pulses=max_pulses
        )
        result.add_row(
            scheme=scheme,
            pulses_to_flip=outcome.pulses,
            flipped=outcome.flipped,
            victim_temperature_k=outcome.victim_temperature_k,
        )
    return result

"""Fig. 3c — pulses-to-bit-flip versus ambient temperature.

Paper setup: 50 nm electrode spacing, pulse lengths 10/30/50 ns, ambient
temperature from 273 K to 373 K.  The exponential temperature dependence of
the switching kinetics makes this the strongest lever: the paper reports
roughly 10^5 pulses at 273 K falling to about 10^2 at 373 K.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..attack.neurohammer import hammer_once
from ..units import ns
from .base import ExperimentResult

#: Ambient temperatures of the paper's sweep [K].
DEFAULT_TEMPERATURES_K = (273.0, 298.0, 323.0, 348.0, 373.0)
#: Pulse lengths of the paper's sweep [s].
DEFAULT_PULSE_LENGTHS_S = (ns(10), ns(30), ns(50))

#: Approximate values read off the paper's log-scale Fig. 3c (50 ns series).
PAPER_REFERENCE = {
    273.0: 1.0e5,
    298.0: 3.0e3,
    373.0: 1.0e2,
}


def run_fig3c(
    temperatures_k: Optional[Sequence[float]] = None,
    pulse_lengths_s: Optional[Sequence[float]] = None,
    electrode_spacing_m: float = 50e-9,
    max_pulses: int = 50_000_000,
) -> ExperimentResult:
    """Run the ambient-temperature sweep and return the figure data."""
    temperatures = tuple(temperatures_k) if temperatures_k is not None else DEFAULT_TEMPERATURES_K
    pulse_lengths = tuple(pulse_lengths_s) if pulse_lengths_s is not None else DEFAULT_PULSE_LENGTHS_S
    result = ExperimentResult(
        name="fig3c",
        description="Pulses to trigger a bit-flip vs ambient temperature",
        columns=["ambient_temperature_k", "pulse_length_ns", "pulses_to_flip", "victim_temperature_k", "flipped"],
        metadata={
            "electrode_spacing_nm": electrode_spacing_m * 1e9,
            "paper_reference_50ns": PAPER_REFERENCE,
        },
    )
    for temperature in temperatures:
        for pulse_length in pulse_lengths:
            attack = hammer_once(
                pulse_length_s=pulse_length,
                electrode_spacing_m=electrode_spacing_m,
                ambient_temperature_k=temperature,
                max_pulses=max_pulses,
            )
            result.add_row(
                ambient_temperature_k=temperature,
                pulse_length_ns=round(pulse_length * 1e9, 3),
                pulses_to_flip=attack.pulses,
                victim_temperature_k=attack.victim_temperature_k,
                flipped=attack.flipped,
            )
    return result

"""Fig. 3c — pulses-to-bit-flip versus ambient temperature.

Paper setup: 50 nm electrode spacing, pulse lengths 10/30/50 ns, ambient
temperature from 273 K to 373 K.  The exponential temperature dependence of
the switching kinetics makes this the strongest lever: the paper reports
roughly 10^5 pulses at 273 K falling to about 10^2 at 373 K.

Like Fig. 3a, the sweep is a :class:`~repro.campaign.spec.CampaignSpec`
(:func:`campaign_spec`) executed through the campaign engine: a grid over
ambient temperature (outer axis) and pulse length (inner axis), matching the
nested loops the experiment historically used.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from ..attack.patterns import single_aggressor
from ..campaign.aggregate import to_experiment_result
from ..campaign.cache import ResultCache
from ..campaign.runner import CampaignRunner, JobRecord
from ..campaign.spec import CampaignSpec
from ..config import CrossbarGeometry
from ..units import ns
from .base import ExperimentResult

#: Ambient temperatures of the paper's sweep [K].
DEFAULT_TEMPERATURES_K = (273.0, 298.0, 323.0, 348.0, 373.0)
#: Pulse lengths of the paper's sweep [s].
DEFAULT_PULSE_LENGTHS_S = (ns(10), ns(30), ns(50))

#: Approximate values read off the paper's log-scale Fig. 3c (50 ns series).
PAPER_REFERENCE = {
    273.0: 1.0e5,
    298.0: 3.0e3,
    373.0: 1.0e2,
}


def campaign_spec(
    temperatures_k: Optional[Sequence[float]] = None,
    pulse_lengths_s: Optional[Sequence[float]] = None,
    electrode_spacing_m: float = 50e-9,
    max_pulses: int = 50_000_000,
) -> CampaignSpec:
    """The Fig. 3c sweep as a declarative campaign spec."""
    temperatures = tuple(temperatures_k) if temperatures_k is not None else DEFAULT_TEMPERATURES_K
    pulse_lengths = tuple(pulse_lengths_s) if pulse_lengths_s is not None else DEFAULT_PULSE_LENGTHS_S
    geometry = CrossbarGeometry(electrode_spacing_m=electrode_spacing_m)
    pattern = single_aggressor(geometry)
    return CampaignSpec(
        name="fig3c",
        experiment="fig3c",
        mode="grid",
        simulation={"geometry": {"electrode_spacing_m": electrode_spacing_m}},
        attack={
            "aggressors": [list(pattern.aggressors[0])],
            "victim": list(pattern.victim),
            "max_pulses": max_pulses,
        },
        axes=[
            {"path": "attack.ambient_temperature_k", "values": [float(value) for value in temperatures]},
            {"path": "attack.pulse.length_s", "values": [float(value) for value in pulse_lengths]},
        ],
    )


def row_from_record(record: JobRecord) -> Dict[str, Any]:
    """Shape one campaign job record into a Fig. 3c table row."""
    result = record.result or {}
    return {
        "ambient_temperature_k": result["ambient_temperature_k"],
        "pulse_length_ns": round(result["pulse_length_s"] * 1e9, 3),
        "pulses_to_flip": result["pulses"],
        "victim_temperature_k": result["victim_temperature_k"],
        "flipped": result["flipped"],
    }


def run_fig3c(
    temperatures_k: Optional[Sequence[float]] = None,
    pulse_lengths_s: Optional[Sequence[float]] = None,
    electrode_spacing_m: float = 50e-9,
    max_pulses: int = 50_000_000,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
) -> ExperimentResult:
    """Run the ambient-temperature sweep and return the figure data.

    ``workers``/``cache`` are forwarded to the campaign runner; the defaults
    execute serially with no cache, matching the historical behaviour.
    """
    spec = campaign_spec(
        temperatures_k=temperatures_k,
        pulse_lengths_s=pulse_lengths_s,
        electrode_spacing_m=electrode_spacing_m,
        max_pulses=max_pulses,
    )
    report = CampaignRunner(spec, cache=cache, workers=workers).run()
    return to_experiment_result(
        spec,
        report,
        row_builder=row_from_record,
        description="Pulses to trigger a bit-flip vs ambient temperature",
        metadata={
            "electrode_spacing_nm": electrode_spacing_m * 1e9,
            "paper_reference_50ns": PAPER_REFERENCE,
        },
    )

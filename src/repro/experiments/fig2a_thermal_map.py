"""Fig. 2a — thermal coupling map of the 5x5 crossbar.

The paper's Fig. 2a shows the steady-state filament temperatures of a 5x5
crossbar while the centre cell is driven at V_SET = 1.05 V in LRS from a
300 K ambient: the attacked cell sits at ≈947 K, the neighbours that share an
electrode line with it at ≈373-395 K, and the remaining cells at 320-355 K.

Three ways of producing the map are supported, in increasing fidelity /
decreasing speed: the circuit-level electro-thermal snapshot with the
calibrated analytic coupling (default; what the attack engine uses), the
lumped thermal resistance network, and the finite-volume solver that replaces
the paper's COMSOL step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..config import CrossbarGeometry, ThermalSolverConfig
from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K, DEFAULT_SET_VOLTAGE_V
from ..circuit.crossbar import CrossbarArray
from ..circuit.drivers import write_bias
from ..errors import ExperimentError
from ..thermal.fdm import HeatSolver
from ..thermal.geometry import build_voxel_model
from ..thermal.network import ThermalResistanceNetwork
from .base import ExperimentResult

#: Quantitative reference points read from the paper's Fig. 2a (300 K ambient).
PAPER_REFERENCE: Dict[str, float] = {
    "aggressor_k": 947.2,
    "same_line_neighbour_min_k": 373.0,
    "same_line_neighbour_max_k": 394.4,
    "diagonal_neighbour_min_k": 345.4,
    "diagonal_neighbour_max_k": 354.4,
    "outer_cell_min_k": 319.7,
    "outer_cell_max_k": 334.2,
    "ambient_k": 300.0,
}


@dataclass
class ThermalMapResult:
    """Temperature map plus the headline comparison numbers."""

    method: str
    temperature_map_k: np.ndarray
    aggressor: Tuple[int, int]
    ambient_temperature_k: float

    @property
    def aggressor_temperature_k(self) -> float:
        """Temperature of the attacked cell [K]."""
        return float(self.temperature_map_k[self.aggressor])

    @property
    def same_line_neighbour_k(self) -> float:
        """Mean temperature of the four same-line nearest neighbours [K]."""
        row, column = self.aggressor
        values = []
        for dr, dc in ((0, 1), (0, -1), (1, 0), (-1, 0)):
            r, c = row + dr, column + dc
            if 0 <= r < self.temperature_map_k.shape[0] and 0 <= c < self.temperature_map_k.shape[1]:
                values.append(self.temperature_map_k[r, c])
        return float(np.mean(values))

    @property
    def diagonal_neighbour_k(self) -> float:
        """Mean temperature of the diagonal neighbours [K]."""
        row, column = self.aggressor
        values = []
        for dr, dc in ((1, 1), (1, -1), (-1, 1), (-1, -1)):
            r, c = row + dr, column + dc
            if 0 <= r < self.temperature_map_k.shape[0] and 0 <= c < self.temperature_map_k.shape[1]:
                values.append(self.temperature_map_k[r, c])
        return float(np.mean(values))


def run_fig2a(
    method: str = "circuit",
    geometry: Optional[CrossbarGeometry] = None,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    set_voltage_v: float = DEFAULT_SET_VOLTAGE_V,
    thermal_config: Optional[ThermalSolverConfig] = None,
) -> ThermalMapResult:
    """Produce the Fig. 2a temperature map with the selected method."""
    geometry = geometry if geometry is not None else CrossbarGeometry()
    aggressor = geometry.centre_cell()

    if method == "circuit":
        crossbar = CrossbarArray(geometry=geometry, ambient_temperature_k=ambient_temperature_k)
        crossbar.set_state(aggressor, 1.0)
        bias = write_bias(geometry, [aggressor], set_voltage_v)
        snapshot = crossbar.thermal_snapshot(bias)
        temperature_map = snapshot.filament_temperatures_k
    elif method == "network":
        crossbar = CrossbarArray(geometry=geometry, ambient_temperature_k=ambient_temperature_k)
        crossbar.set_state(aggressor, 1.0)
        bias = write_bias(geometry, [aggressor], set_voltage_v)
        power = crossbar.thermal_snapshot(bias).operating_point.cell_power(aggressor)
        network = ThermalResistanceNetwork(geometry, ambient_temperature_k=ambient_temperature_k)
        temperature_map = network.temperature_map({aggressor: power})
    elif method == "fdm":
        config = thermal_config if thermal_config is not None else ThermalSolverConfig(
            lateral_resolution_m=25e-9, vertical_resolution_m=25e-9,
            ambient_temperature_k=ambient_temperature_k,
        )
        model = build_voxel_model(geometry, config)
        solver = HeatSolver(model, ambient_temperature_k)
        # Inject the aggressor's dissipated power as computed by the circuit
        # level so the two stacks stay consistent.
        crossbar = CrossbarArray(geometry=geometry, ambient_temperature_k=ambient_temperature_k)
        crossbar.set_state(aggressor, 1.0)
        bias = write_bias(geometry, [aggressor], set_voltage_v)
        power = crossbar.thermal_snapshot(bias).operating_point.cell_power(aggressor)
        temperature_map = solver.solve({aggressor: power}).cell_temperature_map()
    else:
        raise ExperimentError(f"unknown fig2a method {method!r}")

    return ThermalMapResult(
        method=method,
        temperature_map_k=np.asarray(temperature_map, dtype=float),
        aggressor=aggressor,
        ambient_temperature_k=ambient_temperature_k,
    )


def fig2a_experiment(method: str = "circuit") -> ExperimentResult:
    """Package the Fig. 2a map as an :class:`ExperimentResult`."""
    outcome = run_fig2a(method=method)
    result = ExperimentResult(
        name="fig2a",
        description="Temperature map of the 5x5 crossbar while hammering the centre cell",
        columns=["row"] + [f"col{c}" for c in range(outcome.temperature_map_k.shape[1])],
        metadata={
            "method": method,
            "paper_reference": PAPER_REFERENCE,
            "aggressor_temperature_k": outcome.aggressor_temperature_k,
            "same_line_neighbour_k": outcome.same_line_neighbour_k,
            "diagonal_neighbour_k": outcome.diagonal_neighbour_k,
        },
    )
    for row_index, row in enumerate(outcome.temperature_map_k):
        result.add_row(row=row_index, **{f"col{c}": float(value) for c, value in enumerate(row)})
    return result

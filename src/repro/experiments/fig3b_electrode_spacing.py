"""Fig. 3b — pulses-to-bit-flip versus electrode spacing.

Paper setup: 300 K ambient, pulse lengths 50/75/100 ns, electrode spacing of
10 nm, 50 nm and 90 nm.  Denser crossbars couple more strongly, so the attack
needs fewer pulses: the paper reports roughly 10^3 pulses (or below) at 10 nm
rising towards 10^5 at 90 nm.

The sweep is expressed as a :class:`~repro.campaign.spec.CampaignSpec`
(:func:`campaign_spec`) and executed through the campaign engine, so the same
figure can be regenerated serially, over a worker pool, or incrementally from
a result cache — :func:`run_fig3b` with default arguments is the serial path
and reproduces the historical row-for-row output (spacing as the outer loop,
pulse length as the inner loop).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from ..attack.patterns import single_aggressor
from ..campaign.aggregate import to_experiment_result
from ..campaign.cache import ResultCache
from ..campaign.runner import CampaignRunner, JobRecord
from ..campaign.spec import CampaignSpec
from ..config import CrossbarGeometry
from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K
from ..units import nm, ns
from .base import ExperimentResult

#: Electrode spacings of the paper's sweep [m].
DEFAULT_SPACINGS_M = (nm(10), nm(50), nm(90))
#: Pulse lengths of the paper's sweep [s].
DEFAULT_PULSE_LENGTHS_S = (ns(50), ns(75), ns(100))

#: Approximate values read off the paper's log-scale Fig. 3b (50 ns series).
PAPER_REFERENCE = {
    10e-9: 1.0e3,
    50e-9: 3.0e3,
    90e-9: 5.0e4,
}


def campaign_spec(
    spacings_m: Optional[Sequence[float]] = None,
    pulse_lengths_s: Optional[Sequence[float]] = None,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    max_pulses: int = 50_000_000,
) -> CampaignSpec:
    """The Fig. 3b sweep as a declarative campaign spec."""
    spacings = tuple(spacings_m) if spacings_m is not None else DEFAULT_SPACINGS_M
    pulse_lengths = tuple(pulse_lengths_s) if pulse_lengths_s is not None else DEFAULT_PULSE_LENGTHS_S
    # The aggressor/victim layout does not depend on the swept spacing, only
    # on the (fixed) row/column count.
    pattern = single_aggressor(CrossbarGeometry())
    return CampaignSpec(
        name="fig3b",
        experiment="fig3b",
        mode="grid",
        attack={
            "aggressors": [list(pattern.aggressors[0])],
            "victim": list(pattern.victim),
            "ambient_temperature_k": ambient_temperature_k,
            "max_pulses": max_pulses,
        },
        axes=[
            {
                "path": "simulation.geometry.electrode_spacing_m",
                "values": [float(value) for value in spacings],
            },
            {"path": "attack.pulse.length_s", "values": [float(value) for value in pulse_lengths]},
        ],
    )


def row_from_record(record: JobRecord) -> Dict[str, Any]:
    """Shape one campaign job record into a Fig. 3b table row."""
    result = record.result or {}
    spacing_m = record.overrides["simulation.geometry.electrode_spacing_m"]
    return {
        "electrode_spacing_nm": round(spacing_m * 1e9, 3),
        "pulse_length_ns": round(result["pulse_length_s"] * 1e9, 3),
        "pulses_to_flip": result["pulses"],
        "victim_temperature_k": result["victim_temperature_k"],
        "flipped": result["flipped"],
    }


def run_fig3b(
    spacings_m: Optional[Sequence[float]] = None,
    pulse_lengths_s: Optional[Sequence[float]] = None,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    max_pulses: int = 50_000_000,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
) -> ExperimentResult:
    """Run the electrode-spacing sweep and return the figure data.

    ``workers``/``cache`` are forwarded to the campaign runner; the defaults
    execute serially with no cache, matching the historical behaviour.
    """
    spec = campaign_spec(
        spacings_m=spacings_m,
        pulse_lengths_s=pulse_lengths_s,
        ambient_temperature_k=ambient_temperature_k,
        max_pulses=max_pulses,
    )
    report = CampaignRunner(spec, cache=cache, workers=workers).run()
    return to_experiment_result(
        spec,
        report,
        row_builder=row_from_record,
        description="Pulses to trigger a bit-flip vs electrode spacing",
        metadata={
            "ambient_temperature_k": ambient_temperature_k,
            "paper_reference_50ns": {f"{k * 1e9:.0f}nm": v for k, v in PAPER_REFERENCE.items()},
        },
    )

"""Fig. 3b — pulses-to-bit-flip versus electrode spacing.

Paper setup: 300 K ambient, pulse lengths 50/75/100 ns, electrode spacing of
10 nm, 50 nm and 90 nm.  Denser crossbars couple more strongly, so the attack
needs fewer pulses: the paper reports roughly 10^3 pulses (or below) at 10 nm
rising towards 10^5 at 90 nm.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..attack.neurohammer import hammer_once
from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K
from ..units import nm, ns
from .base import ExperimentResult

#: Electrode spacings of the paper's sweep [m].
DEFAULT_SPACINGS_M = (nm(10), nm(50), nm(90))
#: Pulse lengths of the paper's sweep [s].
DEFAULT_PULSE_LENGTHS_S = (ns(50), ns(75), ns(100))

#: Approximate values read off the paper's log-scale Fig. 3b (50 ns series).
PAPER_REFERENCE = {
    10e-9: 1.0e3,
    50e-9: 3.0e3,
    90e-9: 5.0e4,
}


def run_fig3b(
    spacings_m: Optional[Sequence[float]] = None,
    pulse_lengths_s: Optional[Sequence[float]] = None,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    max_pulses: int = 50_000_000,
) -> ExperimentResult:
    """Run the electrode-spacing sweep and return the figure data."""
    spacings = tuple(spacings_m) if spacings_m is not None else DEFAULT_SPACINGS_M
    pulse_lengths = tuple(pulse_lengths_s) if pulse_lengths_s is not None else DEFAULT_PULSE_LENGTHS_S
    result = ExperimentResult(
        name="fig3b",
        description="Pulses to trigger a bit-flip vs electrode spacing",
        columns=["electrode_spacing_nm", "pulse_length_ns", "pulses_to_flip", "victim_temperature_k", "flipped"],
        metadata={
            "ambient_temperature_k": ambient_temperature_k,
            "paper_reference_50ns": {f"{k * 1e9:.0f}nm": v for k, v in PAPER_REFERENCE.items()},
        },
    )
    for spacing in spacings:
        for pulse_length in pulse_lengths:
            attack = hammer_once(
                pulse_length_s=pulse_length,
                electrode_spacing_m=spacing,
                ambient_temperature_k=ambient_temperature_k,
                max_pulses=max_pulses,
            )
            result.add_row(
                electrode_spacing_nm=round(spacing * 1e9, 3),
                pulse_length_ns=round(pulse_length * 1e9, 3),
                pulses_to_flip=attack.pulses,
                victim_temperature_k=attack.victim_temperature_k,
                flipped=attack.flipped,
            )
    return result

"""Sec. VI — security-implication scenarios as a quantitative table.

The paper discusses RowHammer-style attack scenarios qualitatively; the
reproduction turns them into measurable end-to-end runs on the memory
substrate and reports, per scenario, whether it succeeds, how many hammer
pulses it needs and how long it takes, alongside the RowHammer baseline for
the same goal.
"""

from __future__ import annotations

from typing import Optional

from ..attack.neurohammer import hammer_once
from ..attack.rowhammer import RowHammerModel, compare_attacks
from ..attack.scenarios import DenialOfServiceScenario, PrivilegeEscalationScenario
from ..memory.array import DisturbanceProfile, profile_from_attack_result
from ..units import ns
from .base import ExperimentResult


def run_scenarios(
    pulse_length_s: float = ns(50),
    max_pulses: int = 10_000_000,
    disturbance: Optional[DisturbanceProfile] = None,
) -> ExperimentResult:
    """Run both attack scenarios and the RowHammer comparison."""
    if disturbance is None:
        # Derive the disturbance figure from the physics stack so the system
        # level stays consistent with the circuit level.
        reference = hammer_once(pulse_length_s=pulse_length_s, max_pulses=max_pulses)
        disturbance = profile_from_attack_result(reference.pulses, pulse_length_s * 2.0)
        reference_pulses = reference.pulses
    else:
        reference_pulses = disturbance.same_line_pulses

    result = ExperimentResult(
        name="scenarios",
        description="End-to-end attack scenarios on the ReRAM memory substrate (Sec. VI)",
        columns=[
            "scenario",
            "success",
            "hammer_pulses",
            "attack_time_s",
            "rowhammer_activations",
            "rowhammer_time_s",
            "steps",
        ],
        metadata={
            "pulses_to_flip_one_bit": reference_pulses,
            "pulse_period_s": disturbance.pulse_period_s,
        },
    )

    rowhammer = RowHammerModel().estimate(double_sided=True)

    escalation = PrivilegeEscalationScenario(disturbance=disturbance).run()
    result.add_row(
        scenario="privilege_escalation",
        success=escalation.success,
        hammer_pulses=escalation.total_pulses,
        attack_time_s=escalation.attack_time_s,
        rowhammer_activations=rowhammer.activations,
        rowhammer_time_s=rowhammer.attack_time_s,
        steps=len(escalation.steps),
    )

    dos = DenialOfServiceScenario(disturbance=disturbance).run()
    result.add_row(
        scenario="denial_of_service",
        success=dos.success,
        hammer_pulses=dos.total_pulses,
        attack_time_s=dos.attack_time_s,
        rowhammer_activations=rowhammer.activations,
        rowhammer_time_s=rowhammer.attack_time_s,
        steps=len(dos.steps),
    )

    comparison = compare_attacks(reference_pulses, reference_pulses * disturbance.pulse_period_s)
    result.metadata["neurohammer_vs_rowhammer_pulse_ratio"] = comparison.pulse_ratio
    result.metadata["neurohammer_vs_rowhammer_time_ratio"] = comparison.time_ratio
    return result

"""Experiment harness: one module per paper figure plus ablations.

Every experiment returns an :class:`repro.experiments.base.ExperimentResult`
whose rows reproduce the series of the corresponding paper figure; the
benchmark suite under ``benchmarks/`` wraps these one-to-one.
"""

from .ablations import (
    run_alpha_source_ablation,
    run_bias_scheme_ablation,
    run_device_model_ablation,
)
from .base import (
    ExperimentResult,
    decades_spanned,
    monotonically_decreasing,
    monotonically_increasing,
)
from .calibration import (
    DISTRIBUTION_PROVENANCE,
    CalibrationTargets,
    DistributionProvenance,
    calibration_report,
    default_variability_distributions,
    distribution_provenance_report,
)
from .fig2a_thermal_map import PAPER_REFERENCE as FIG2A_PAPER_REFERENCE
from .fig2a_thermal_map import ThermalMapResult, fig2a_experiment, run_fig2a
from .fig3a_pulse_length import campaign_spec as fig3a_campaign_spec
from .fig3a_pulse_length import run_fig3a
from .fig3b_electrode_spacing import campaign_spec as fig3b_campaign_spec
from .fig3b_electrode_spacing import run_fig3b
from .fig3c_ambient_temperature import campaign_spec as fig3c_campaign_spec
from .fig3c_ambient_temperature import run_fig3c
from .fig3d_attack_patterns import campaign_spec as fig3d_campaign_spec
from .fig3d_attack_patterns import run_fig3d
from .scenarios_table import run_scenarios

__all__ = [
    "ExperimentResult",
    "monotonically_decreasing",
    "monotonically_increasing",
    "decades_spanned",
    "run_fig2a",
    "fig2a_experiment",
    "ThermalMapResult",
    "FIG2A_PAPER_REFERENCE",
    "run_fig3a",
    "fig3a_campaign_spec",
    "run_fig3b",
    "fig3b_campaign_spec",
    "run_fig3c",
    "fig3c_campaign_spec",
    "run_fig3d",
    "fig3d_campaign_spec",
    "run_scenarios",
    "run_alpha_source_ablation",
    "run_device_model_ablation",
    "run_bias_scheme_ablation",
    "CalibrationTargets",
    "calibration_report",
    "DISTRIBUTION_PROVENANCE",
    "DistributionProvenance",
    "default_variability_distributions",
    "distribution_provenance_report",
]

"""Calibration report: the operating points the default parameters are tied to.

DESIGN.md documents that the device model is calibrated once, against the
paper's Fig. 2a operating point and the Fig. 3a mid-point, and that every
figure is then produced by the same physics.  This module makes that claim
checkable: it recomputes the calibration targets from the current default
parameters so tests (and users who change parameters) can see exactly which
anchors moved.

It also records the *statistical* calibration state: every variability sigma
the repository ships (examples, benchmarks, the defense-under-variation
harness) is listed in :data:`DISTRIBUTION_PROVENANCE` together with its
source — ``placeholder`` until a published variability dataset pins it down,
``literature`` once it is fitted.  ``repro mc run SPEC --show-distributions``
surfaces this table next to any spec, so a population study always states
which of its sigmas are anchored and which are still engineering estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..attack.neurohammer import hammer_once
from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K, DEFAULT_SET_VOLTAGE_V
from ..devices.jart_vcm import JartVcmModel
from ..devices.thermal import solve_operating_point
from .base import ExperimentResult


@dataclass
class CalibrationTargets:
    """The anchors the default parameter set is calibrated against."""

    #: Paper Fig. 2a: attacked LRS cell temperature at V_SET from 300 K [K].
    aggressor_temperature_k: float = 947.2
    #: Acceptable deviation of the aggressor temperature [K].
    aggressor_tolerance_k: float = 60.0
    #: Paper Fig. 3a mid-point: pulses to flip at 50 ns / 50 nm / 300 K.
    reference_pulses: float = 3.0e3
    #: Acceptable multiplicative deviation of the reference pulse count.
    reference_pulses_factor: float = 3.0


def calibration_report(targets: CalibrationTargets = None) -> ExperimentResult:
    """Recompute the calibration anchors with the current default parameters."""
    targets = targets if targets is not None else CalibrationTargets()
    model = JartVcmModel()

    aggressor = solve_operating_point(model, DEFAULT_SET_VOLTAGE_V, 1.0, DEFAULT_AMBIENT_TEMPERATURE_K)
    reference = hammer_once(pulse_length_s=50e-9)

    result = ExperimentResult(
        name="calibration",
        description="Calibration anchors of the default JART-style parameter set",
        columns=["anchor", "target", "measured", "within_tolerance"],
        metadata={
            "lrs_resistance_ohm": model.lrs_resistance_ohm(),
            "hrs_resistance_ohm": model.hrs_resistance_ohm(),
            "resistance_window": model.resistance_window(),
        },
    )
    result.add_row(
        anchor="fig2a_aggressor_temperature_k",
        target=targets.aggressor_temperature_k,
        measured=aggressor.filament_temperature_k,
        within_tolerance=abs(aggressor.filament_temperature_k - targets.aggressor_temperature_k)
        <= targets.aggressor_tolerance_k,
    )
    result.add_row(
        anchor="fig3a_pulses_at_50ns",
        target=targets.reference_pulses,
        measured=reference.pulses,
        within_tolerance=(
            targets.reference_pulses / targets.reference_pulses_factor
            <= reference.pulses
            <= targets.reference_pulses * targets.reference_pulses_factor
        ),
    )
    return result


# ----------------------------------------------------------------------
# variability-distribution provenance
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DistributionProvenance:
    """Provenance of one shipped variability sigma."""

    #: Sampled dotted path (see :mod:`repro.montecarlo.sampling`).
    path: str
    kind: str
    sigma: float
    relative: bool
    #: ``"placeholder"`` (engineering estimate awaiting a fit) or
    #: ``"literature"`` (fitted against a published dataset).
    source: str
    #: What the number is tied to, or what would pin it down.
    reference: str
    #: Whether :func:`default_variability_distributions` includes the path.
    default: bool = True


#: Every variability sigma shipped by this repository, with its source.
#: The ROADMAP's "distribution calibration" item tracks promoting the
#: placeholders to literature fits (JART VCM v1b cycle-to-cycle lognormals).
DISTRIBUTION_PROVENANCE: Tuple[DistributionProvenance, ...] = (
    DistributionProvenance(
        path="device.activation_energy_ev",
        kind="normal",
        sigma=0.01,
        relative=True,
        source="placeholder",
        reference=(
            "±1% device-to-device spread, engineering estimate; to be fitted against "
            "the JART VCM v1b variability set (Hardtdegen et al., TED 2018 methodology)"
        ),
    ),
    DistributionProvenance(
        path="device.series_resistance_ohm",
        kind="normal",
        sigma=0.05,
        relative=True,
        source="placeholder",
        reference=(
            "±5% line/electrode resistance spread, engineering estimate pending "
            "extraction from array-level IR-drop measurements"
        ),
    ),
    DistributionProvenance(
        path="device.rth_eff_k_per_w",
        kind="normal",
        sigma=0.05,
        relative=True,
        source="placeholder",
        reference=(
            "±5% effective thermal resistance spread; filament-geometry dependent, "
            "no published distribution for the Eq. 6 R_th,eff of this stack"
        ),
        default=False,
    ),
    DistributionProvenance(
        path="attack.pulse.length_s",
        kind="lognormal",
        sigma=0.2,
        relative=True,
        source="literature",
        reference=(
            "lognormal cycle-to-cycle timing jitter shape per the JART VCM v1b "
            "variability model family; the 0.2 log-sigma magnitude remains a "
            "placeholder until fitted"
        ),
        default=False,
    ),
)


def default_variability_distributions() -> List[dict]:
    """The shipped default population (every ``default=True`` table entry).

    Returned as plain dicts (the :class:`~repro.montecarlo.sampling.ParameterDistribution`
    JSON idiom) so callers can embed them directly into campaign specs and
    ``MonteCarloConfig`` objects.
    """
    return [
        {
            "path": entry.path,
            "kind": entry.kind,
            "mean": 1.0 if entry.relative else None,
            "sigma": entry.sigma,
            "relative": entry.relative,
        }
        for entry in DISTRIBUTION_PROVENANCE
        if entry.default
    ]


def provenance_for(path: str) -> Optional[DistributionProvenance]:
    """The provenance entry of one sampled path, if the table records it."""
    for entry in DISTRIBUTION_PROVENANCE:
        if entry.path == path:
            return entry
    return None


def distribution_provenance_report(
    distributions: Optional[Sequence] = None,
) -> ExperimentResult:
    """The provenance table, optionally matched against a spec's distributions.

    Without arguments, the report lists every shipped sigma.  Given a list of
    distributions (objects or dicts), each is matched by path: entries found
    in the table inherit its source, everything else is reported as
    ``user-supplied`` so a spec can never silently masquerade a custom sigma
    as a calibrated one.
    """
    result = ExperimentResult(
        name="distribution_provenance",
        description="Provenance of the shipped variability sigmas (placeholder vs literature)",
        columns=["path", "kind", "sigma", "relative", "source", "reference"],
        metadata={
            "placeholders": sum(1 for e in DISTRIBUTION_PROVENANCE if e.source == "placeholder"),
            "literature": sum(1 for e in DISTRIBUTION_PROVENANCE if e.source == "literature"),
        },
    )
    if distributions is None:
        for entry in DISTRIBUTION_PROVENANCE:
            result.add_row(
                path=entry.path,
                kind=entry.kind,
                sigma=entry.sigma,
                relative=entry.relative,
                source=entry.source,
                reference=entry.reference,
            )
        return result
    for dist in distributions:
        data = dist if isinstance(dist, dict) else dist.to_dict()
        path = data.get("path", "?")
        entry = provenance_for(path)
        sigma = data.get("sigma")
        if entry is None:
            source, reference = "user-supplied", "not in the shipped provenance table"
        elif sigma is not None and abs(float(sigma) - entry.sigma) > 1e-12 * max(1.0, entry.sigma):
            source = "user-supplied"
            reference = f"deviates from the shipped {entry.source} sigma {entry.sigma:g}"
        else:
            source, reference = entry.source, entry.reference
        result.add_row(
            path=path,
            kind=data.get("kind", "?"),
            sigma=sigma,
            relative=bool(data.get("relative", False)),
            source=source,
            reference=reference,
        )
    return result

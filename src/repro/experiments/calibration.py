"""Calibration report: the operating points the default parameters are tied to.

DESIGN.md documents that the device model is calibrated once, against the
paper's Fig. 2a operating point and the Fig. 3a mid-point, and that every
figure is then produced by the same physics.  This module makes that claim
checkable: it recomputes the calibration targets from the current default
parameters so tests (and users who change parameters) can see exactly which
anchors moved.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..attack.neurohammer import hammer_once
from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K, DEFAULT_SET_VOLTAGE_V
from ..devices.jart_vcm import JartVcmModel
from ..devices.thermal import solve_operating_point
from .base import ExperimentResult


@dataclass
class CalibrationTargets:
    """The anchors the default parameter set is calibrated against."""

    #: Paper Fig. 2a: attacked LRS cell temperature at V_SET from 300 K [K].
    aggressor_temperature_k: float = 947.2
    #: Acceptable deviation of the aggressor temperature [K].
    aggressor_tolerance_k: float = 60.0
    #: Paper Fig. 3a mid-point: pulses to flip at 50 ns / 50 nm / 300 K.
    reference_pulses: float = 3.0e3
    #: Acceptable multiplicative deviation of the reference pulse count.
    reference_pulses_factor: float = 3.0


def calibration_report(targets: CalibrationTargets = None) -> ExperimentResult:
    """Recompute the calibration anchors with the current default parameters."""
    targets = targets if targets is not None else CalibrationTargets()
    model = JartVcmModel()

    aggressor = solve_operating_point(model, DEFAULT_SET_VOLTAGE_V, 1.0, DEFAULT_AMBIENT_TEMPERATURE_K)
    reference = hammer_once(pulse_length_s=50e-9)

    result = ExperimentResult(
        name="calibration",
        description="Calibration anchors of the default JART-style parameter set",
        columns=["anchor", "target", "measured", "within_tolerance"],
        metadata={
            "lrs_resistance_ohm": model.lrs_resistance_ohm(),
            "hrs_resistance_ohm": model.hrs_resistance_ohm(),
            "resistance_window": model.resistance_window(),
        },
    )
    result.add_row(
        anchor="fig2a_aggressor_temperature_k",
        target=targets.aggressor_temperature_k,
        measured=aggressor.filament_temperature_k,
        within_tolerance=abs(aggressor.filament_temperature_k - targets.aggressor_temperature_k)
        <= targets.aggressor_tolerance_k,
    )
    result.add_row(
        anchor="fig3a_pulses_at_50ns",
        target=targets.reference_pulses,
        measured=reference.pulses,
        within_tolerance=(
            targets.reference_pulses / targets.reference_pulses_factor
            <= reference.pulses
            <= targets.reference_pulses * targets.reference_pulses_factor
        ),
    )
    return result

"""Fig. 3a — pulses-to-bit-flip versus hammer pulse length.

Paper setup: 5x5 crossbar, 50 nm electrode spacing, 300 K ambient, V/2 write
scheme, centre-cell attack.  The pulse length is swept from 10 ns to 100 ns
and the number of hammer pulses until the half-selected neighbour flips is
recorded; the paper reports roughly 10^4 pulses at 10 ns falling to about
10^3 at 100 ns.

The sweep is expressed as a :class:`~repro.campaign.spec.CampaignSpec`
(:func:`campaign_spec`) and executed through the campaign engine, so the same
figure can be regenerated serially, over a worker pool, or incrementally from
a result cache — :func:`run_fig3a` with default arguments is the serial path
and reproduces the historical row-for-row output.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from ..attack.patterns import single_aggressor
from ..campaign.aggregate import to_experiment_result
from ..campaign.cache import ResultCache
from ..campaign.runner import CampaignRunner, JobRecord
from ..campaign.spec import CampaignSpec
from ..config import CrossbarGeometry
from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K
from ..units import ns
from .base import ExperimentResult

#: Pulse lengths of the paper's sweep [s].
DEFAULT_PULSE_LENGTHS_S = tuple(ns(value) for value in (10, 20, 30, 40, 50, 60, 70, 80, 90, 100))

#: Approximate values read off the paper's log-scale Fig. 3a.
PAPER_REFERENCE = {
    10e-9: 1.0e4,
    50e-9: 2.5e3,
    100e-9: 1.2e3,
}


def campaign_spec(
    pulse_lengths_s: Optional[Sequence[float]] = None,
    electrode_spacing_m: float = 50e-9,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    max_pulses: int = 10_000_000,
) -> CampaignSpec:
    """The Fig. 3a sweep as a declarative campaign spec."""
    pulse_lengths = tuple(pulse_lengths_s) if pulse_lengths_s is not None else DEFAULT_PULSE_LENGTHS_S
    geometry = CrossbarGeometry(electrode_spacing_m=electrode_spacing_m)
    pattern = single_aggressor(geometry)
    return CampaignSpec(
        name="fig3a",
        experiment="fig3a",
        mode="grid",
        simulation={"geometry": {"electrode_spacing_m": electrode_spacing_m}},
        attack={
            "aggressors": [list(pattern.aggressors[0])],
            "victim": list(pattern.victim),
            "ambient_temperature_k": ambient_temperature_k,
            "max_pulses": max_pulses,
        },
        axes=[{"path": "attack.pulse.length_s", "values": [float(value) for value in pulse_lengths]}],
    )


def row_from_record(record: JobRecord) -> Dict[str, Any]:
    """Shape one campaign job record into a Fig. 3a table row."""
    result = record.result or {}
    return {
        "pulse_length_ns": round(result["pulse_length_s"] * 1e9, 3),
        "pulses_to_flip": result["pulses"],
        "stress_time_us": result["stress_time_s"] * 1e6,
        "victim_temperature_k": result["victim_temperature_k"],
        "flipped": result["flipped"],
    }


def run_fig3a(
    pulse_lengths_s: Optional[Sequence[float]] = None,
    electrode_spacing_m: float = 50e-9,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    max_pulses: int = 10_000_000,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
) -> ExperimentResult:
    """Run the pulse-length sweep and return the figure data.

    ``workers``/``cache`` are forwarded to the campaign runner; the defaults
    execute serially with no cache, matching the historical behaviour.
    """
    spec = campaign_spec(
        pulse_lengths_s=pulse_lengths_s,
        electrode_spacing_m=electrode_spacing_m,
        ambient_temperature_k=ambient_temperature_k,
        max_pulses=max_pulses,
    )
    report = CampaignRunner(spec, cache=cache, workers=workers).run()
    return to_experiment_result(
        spec,
        report,
        row_builder=row_from_record,
        description="Pulses to trigger a bit-flip vs hammer pulse length",
        metadata={
            "electrode_spacing_nm": electrode_spacing_m * 1e9,
            "ambient_temperature_k": ambient_temperature_k,
            "paper_reference": {f"{k * 1e9:.0f}ns": v for k, v in PAPER_REFERENCE.items()},
        },
    )

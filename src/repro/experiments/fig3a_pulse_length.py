"""Fig. 3a — pulses-to-bit-flip versus hammer pulse length.

Paper setup: 5x5 crossbar, 50 nm electrode spacing, 300 K ambient, V/2 write
scheme, centre-cell attack.  The pulse length is swept from 10 ns to 100 ns
and the number of hammer pulses until the half-selected neighbour flips is
recorded; the paper reports roughly 10^4 pulses at 10 ns falling to about
10^3 at 100 ns.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..attack.neurohammer import hammer_once
from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K
from ..units import ns
from .base import ExperimentResult

#: Pulse lengths of the paper's sweep [s].
DEFAULT_PULSE_LENGTHS_S = tuple(ns(value) for value in (10, 20, 30, 40, 50, 60, 70, 80, 90, 100))

#: Approximate values read off the paper's log-scale Fig. 3a.
PAPER_REFERENCE = {
    10e-9: 1.0e4,
    50e-9: 2.5e3,
    100e-9: 1.2e3,
}


def run_fig3a(
    pulse_lengths_s: Optional[Sequence[float]] = None,
    electrode_spacing_m: float = 50e-9,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    max_pulses: int = 10_000_000,
) -> ExperimentResult:
    """Run the pulse-length sweep and return the figure data."""
    pulse_lengths = tuple(pulse_lengths_s) if pulse_lengths_s is not None else DEFAULT_PULSE_LENGTHS_S
    result = ExperimentResult(
        name="fig3a",
        description="Pulses to trigger a bit-flip vs hammer pulse length",
        columns=["pulse_length_ns", "pulses_to_flip", "stress_time_us", "victim_temperature_k", "flipped"],
        metadata={
            "electrode_spacing_nm": electrode_spacing_m * 1e9,
            "ambient_temperature_k": ambient_temperature_k,
            "paper_reference": {f"{k * 1e9:.0f}ns": v for k, v in PAPER_REFERENCE.items()},
        },
    )
    for pulse_length in pulse_lengths:
        attack = hammer_once(
            pulse_length_s=pulse_length,
            electrode_spacing_m=electrode_spacing_m,
            ambient_temperature_k=ambient_temperature_k,
            max_pulses=max_pulses,
        )
        result.add_row(
            pulse_length_ns=round(pulse_length * 1e9, 3),
            pulses_to_flip=attack.pulses,
            stress_time_us=attack.stress_time_s * 1e6,
            victim_temperature_k=attack.victim_temperature_k,
            flipped=attack.flipped,
        )
    return result

"""Experiment framework shared by every figure reproduction.

An experiment produces an :class:`ExperimentResult`: a list of parameter/value
rows plus metadata, renderable as an ASCII table or chart and exportable to
CSV/JSON.  The benchmark harness wraps these experiments one-to-one, so the
figure data can be regenerated both from pytest-benchmark and from the
examples.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..errors import ExperimentError
from ..utils.tables import ascii_table, log_ascii_chart, to_csv


@dataclass
class ExperimentResult:
    """Tabular result of one experiment."""

    #: Experiment identifier (e.g. "fig3a").
    name: str
    #: Human-readable description.
    description: str
    #: Column names, in display order.
    columns: List[str]
    #: Data rows; each row is a mapping from column name to value.
    rows: List[Dict[str, Any]] = field(default_factory=list)
    #: Free-form metadata (parameters, paper reference values, runtime).
    metadata: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        """Append one row; unknown columns are appended to the column list."""
        for key in values:
            if key not in self.columns:
                self.columns.append(key)
        self.rows.append(dict(values))

    def column(self, name: str) -> List[Any]:
        """All values of one column."""
        if name not in self.columns:
            raise ExperimentError(f"column {name!r} not present in experiment {self.name!r}")
        return [row.get(name) for row in self.rows]

    # -- rendering ---------------------------------------------------------

    def to_table(self) -> str:
        """Render as an ASCII table."""
        rows = [[row.get(column, "") for column in self.columns] for row in self.rows]
        return ascii_table(self.columns, rows)

    def to_chart(self, label_column: str, value_column: str, title: Optional[str] = None) -> str:
        """Render one column as a log-scale ASCII chart keyed by another column."""
        labels = self.column(label_column)
        values = [float(v) for v in self.column(value_column)]
        return log_ascii_chart(labels, values, title=title or f"{self.name}: {value_column}")

    def to_csv(self) -> str:
        """Serialise the rows as CSV."""
        rows = [[row.get(column, "") for column in self.columns] for row in self.rows]
        return to_csv(self.columns, rows)

    def to_json(self) -> str:
        """Serialise result and metadata as JSON."""
        return json.dumps(
            {
                "name": self.name,
                "description": self.description,
                "columns": self.columns,
                "rows": self.rows,
                "metadata": self.metadata,
            },
            indent=2,
            sort_keys=True,
            default=str,
        )

    def save(self, directory: Union[str, Path]) -> Path:
        """Write CSV and JSON exports into a directory; returns the JSON path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"{self.name}.csv").write_text(self.to_csv(), encoding="utf-8")
        json_path = directory / f"{self.name}.json"
        json_path.write_text(self.to_json() + "\n", encoding="utf-8")
        return json_path


def monotonically_decreasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """True if the sequence never increases by more than ``tolerance``."""
    return all(b <= a * (1 + tolerance) for a, b in zip(values, values[1:]))


def monotonically_increasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """True if the sequence never decreases by more than ``tolerance``."""
    return all(b >= a * (1 - tolerance) for a, b in zip(values, values[1:]))


def decades_spanned(values: Sequence[float]) -> float:
    """Number of decades between the smallest and largest positive value."""
    import math

    positives = [value for value in values if value > 0]
    if not positives:
        return 0.0
    return math.log10(max(positives)) - math.log10(min(positives))

"""Fig. 3d/e-h — impact of different attack patterns.

The caption of the paper's Fig. 3 references an attack-pattern comparison
(sub-figures d-h) whose plot is not included in the preprint text.  The
reproduction evaluates the canonical pattern set of
:mod:`repro.attack.patterns` — single aggressor, double-sided row,
double-sided column, quad surround and full row sweep — and reports, per
pattern, the total pulses and the wall-clock time until the victim flips.

Expected shape: patterns with more simultaneously hot aggressors deliver more
crosstalk per pulse and therefore need fewer pulses; interleaved patterns
(quad) trade per-pulse efficiency for a larger heated neighbourhood.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..attack.neurohammer import NeuroHammer
from ..attack.patterns import standard_patterns
from ..config import AttackConfig, CrossbarGeometry, PulseConfig
from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K
from ..circuit.crossbar import CrossbarArray
from ..units import ns
from .base import ExperimentResult


def run_fig3d(
    pulse_length_s: float = ns(50),
    electrode_spacing_m: float = 50e-9,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    pattern_names: Optional[Sequence[str]] = None,
    max_pulses: int = 10_000_000,
) -> ExperimentResult:
    """Evaluate the attack-pattern set and return the comparison data."""
    geometry = CrossbarGeometry(electrode_spacing_m=electrode_spacing_m)
    patterns = standard_patterns(geometry)
    if pattern_names is not None:
        patterns = {name: patterns[name] for name in pattern_names if name in patterns}

    result = ExperimentResult(
        name="fig3d",
        description="Pulses to trigger a bit-flip for different attack patterns",
        columns=[
            "pattern",
            "aggressors",
            "phases",
            "pulses_to_flip",
            "pulses_per_aggressor",
            "wall_clock_us",
            "victim_temperature_k",
            "flipped",
        ],
        metadata={
            "pulse_length_ns": pulse_length_s * 1e9,
            "electrode_spacing_nm": electrode_spacing_m * 1e9,
            "ambient_temperature_k": ambient_temperature_k,
        },
    )
    for name, pattern in patterns.items():
        crossbar = CrossbarArray(geometry=geometry, ambient_temperature_k=ambient_temperature_k)
        attack = NeuroHammer(crossbar)
        config = AttackConfig(
            aggressors=list(pattern.aggressors),
            victim=pattern.victim,
            pulse=PulseConfig(length_s=pulse_length_s),
            ambient_temperature_k=ambient_temperature_k,
            max_pulses=max_pulses,
        )
        outcome = attack.run(pattern=pattern, config=config)
        result.add_row(
            pattern=name,
            aggressors=pattern.aggressor_count,
            phases=pattern.phase_count,
            pulses_to_flip=outcome.pulses,
            pulses_per_aggressor=outcome.pulses_per_aggressor,
            wall_clock_us=outcome.wall_clock_s * 1e6,
            victim_temperature_k=outcome.victim_temperature_k,
            flipped=outcome.flipped,
        )
    return result

"""Fig. 3d/e-h — impact of different attack patterns.

The caption of the paper's Fig. 3 references an attack-pattern comparison
(sub-figures d-h) whose plot is not included in the preprint text.  The
reproduction evaluates the canonical pattern set of
:mod:`repro.attack.patterns` — single aggressor, double-sided row,
double-sided column, quad surround and full row sweep — and reports, per
pattern, the total pulses and the wall-clock time until the victim flips.

Expected shape: patterns with more simultaneously hot aggressors deliver more
crosstalk per pulse and therefore need fewer pulses; interleaved patterns
(quad) trade per-pulse efficiency for a larger heated neighbourhood.

The comparison is expressed as a :class:`~repro.campaign.spec.CampaignSpec`
sweeping ``attack.pattern`` over the named standard patterns and executed
through the campaign engine, so it can run serially, over a worker pool, or
incrementally from a result cache — :func:`run_fig3d` with default arguments
is the serial path and reproduces the historical row-for-row output.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from ..attack.patterns import standard_patterns
from ..campaign.aggregate import to_experiment_result
from ..campaign.cache import ResultCache
from ..campaign.runner import CampaignRunner, JobRecord
from ..campaign.spec import CampaignSpec
from ..config import CrossbarGeometry
from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K
from ..units import ns
from .base import ExperimentResult


def campaign_spec(
    pulse_length_s: float = ns(50),
    electrode_spacing_m: float = 50e-9,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    pattern_names: Optional[Sequence[str]] = None,
    max_pulses: int = 10_000_000,
) -> CampaignSpec:
    """The Fig. 3d pattern comparison as a declarative campaign spec."""
    geometry = CrossbarGeometry(electrode_spacing_m=electrode_spacing_m)
    patterns = standard_patterns(geometry)
    if pattern_names is None:
        names = list(patterns)
    else:
        # Preserve the caller's requested ordering (historical behaviour).
        names = [name for name in pattern_names if name in patterns]
    return CampaignSpec(
        name="fig3d",
        experiment="fig3d",
        mode="grid",
        simulation={"geometry": {"electrode_spacing_m": electrode_spacing_m}},
        attack={
            "ambient_temperature_k": ambient_temperature_k,
            "max_pulses": max_pulses,
            "pulse": {"length_s": pulse_length_s},
        },
        axes=[{"path": "attack.pattern", "values": names}],
    )


def row_from_record(record: JobRecord) -> Dict[str, Any]:
    """Shape one campaign job record into a Fig. 3d table row."""
    result = record.result or {}
    return {
        "pattern": result["pattern"],
        "aggressors": len(result["aggressors"]),
        "phases": result["phases"],
        "pulses_to_flip": result["pulses"],
        "pulses_per_aggressor": result["pulses_per_aggressor"],
        "wall_clock_us": result["wall_clock_s"] * 1e6,
        "victim_temperature_k": result["victim_temperature_k"],
        "flipped": result["flipped"],
    }


def run_fig3d(
    pulse_length_s: float = ns(50),
    electrode_spacing_m: float = 50e-9,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    pattern_names: Optional[Sequence[str]] = None,
    max_pulses: int = 10_000_000,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
) -> ExperimentResult:
    """Evaluate the attack-pattern set and return the comparison data.

    ``workers``/``cache`` are forwarded to the campaign runner; the defaults
    execute serially with no cache, matching the historical behaviour.
    """
    spec = campaign_spec(
        pulse_length_s=pulse_length_s,
        electrode_spacing_m=electrode_spacing_m,
        ambient_temperature_k=ambient_temperature_k,
        pattern_names=pattern_names,
        max_pulses=max_pulses,
    )
    report = CampaignRunner(spec, cache=cache, workers=workers).run()
    return to_experiment_result(
        spec,
        report,
        row_builder=row_from_record,
        description="Pulses to trigger a bit-flip for different attack patterns",
        metadata={
            "pulse_length_ns": pulse_length_s * 1e9,
            "electrode_spacing_nm": electrode_spacing_m * 1e9,
            "ambient_temperature_k": ambient_temperature_k,
        },
    )

"""End-to-end attack scenarios (Sec. VI of the paper).

The paper argues that RowHammer-style exploits transfer to NeuroHammer once
ReRAM is used as main memory.  These scenario engines replay the two classic
RowHammer exploit classes on the reproduction's memory substrate, with the
disturbance figures taken from the circuit-level attack simulation:

* :class:`PrivilegeEscalationScenario` — the Seaborn/Dullien page-table
  exploit: the attacker hammers its own memory to flip a bit in the physical
  frame number of one of its page-table entries so the entry points at a
  page-table frame, breaking memory isolation and ultimately exposing a
  victim secret.
* :class:`DenialOfServiceScenario` — the attacker flips bits in a victim's
  data until the ECC can no longer correct them, producing an uncorrectable
  (detected-but-fatal) error, i.e. a crash/denial of service.

Both scenarios honour the physical constraints of the attack: a victim bit
can only be flipped if the attacker owns a cell that is physically adjacent
in the crossbar layout, only bits stored in the vulnerable state can flip,
and each flip costs the pulse count delivered by the physics stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import AttackError
from ..memory.array import DisturbanceProfile, ReramMemory
from ..memory.ecc import HammingSecDed
from ..memory.isolation import IsolationReport, audit_isolation
from ..memory.mapping import AddressMapping
from ..memory.pagetable import PTE_BYTES, PageTable, PageTableEntry, PhysicalMemoryManager


@dataclass
class ScenarioStep:
    """One narrated step of a scenario run."""

    description: str
    pulses: int = 0


@dataclass
class ScenarioResult:
    """Outcome of a scenario run."""

    name: str
    success: bool
    steps: List[ScenarioStep] = field(default_factory=list)
    total_pulses: int = 0
    attack_time_s: float = 0.0
    isolation_before: Optional[IsolationReport] = None
    isolation_after: Optional[IsolationReport] = None
    #: Scenario-specific payload (e.g. the exfiltrated secret).
    payload: Optional[bytes] = None
    #: Scenario-specific numbers (e.g. yield/BER statistics).
    stats: Dict[str, object] = field(default_factory=dict)

    def log(self, description: str, pulses: int = 0) -> None:
        """Append a narrated step."""
        self.steps.append(ScenarioStep(description, pulses))
        self.total_pulses += pulses


class PrivilegeEscalationScenario:
    """Page-table privilege escalation through NeuroHammer bit flips."""

    def __init__(
        self,
        disturbance: Optional[DisturbanceProfile] = None,
        page_size: int = 256,
        mapping: Optional[AddressMapping] = None,
    ):
        self.mapping = mapping if mapping is not None else AddressMapping(rows=64, columns=64, tiles_per_bank=16, banks=1)
        self.disturbance = disturbance if disturbance is not None else DisturbanceProfile()
        self.page_size = page_size
        if self.page_size % PTE_BYTES != 0:
            raise AttackError("page size must be a multiple of the PTE size")
        self.memory = ReramMemory(mapping=self.mapping, disturbance=self.disturbance)
        total_frames = self.mapping.capacity_bytes // self.page_size
        self.manager = PhysicalMemoryManager(total_frames=total_frames, page_size=self.page_size)

    # ------------------------------------------------------------------

    def _frame_base(self, frame_number: int) -> int:
        return frame_number * self.page_size

    def _setup(self, result: ScenarioResult) -> Tuple[PageTable, Dict[str, PageTable], int, int]:
        """Lay out kernel structures, attacker pages and the victim secret.

        The attacker performs the classic page-table spray: it maps many
        regions, so the kernel keeps allocating fresh page-table frames, and
        attacker data frames and kernel page-table frames end up interleaved
        in physical memory — exactly the memory massaging step of the
        Seaborn/Dullien exploit.  In this deterministic reproduction the
        interleaving is laid out explicitly.
        """
        # Victim process: its page table and its secret data frame.
        victim_pt_frame = self.manager.allocate("kernel", kind="page_table")
        victim_frame = self.manager.allocate("victim", kind="data")
        secret = b"TOP-SECRET-KEY!!"
        self.memory.write_block(self._frame_base(victim_frame.frame_number), secret)
        victim_table = PageTable(
            self.memory,
            base_address=self._frame_base(victim_pt_frame.frame_number),
            entries=self.page_size // PTE_BYTES,
            page_size=self.page_size,
        )
        victim_table.write_entry(
            0, PageTableEntry(present=True, writable=True, user=True, frame_number=victim_frame.frame_number)
        )

        # Attacker spray: alternating attacker data frames and kernel
        # page-table frames.  The first sprayed page-table frame becomes the
        # attacker's own page table.
        attacker_frames = []
        sprayed_pt_frames = []
        for _ in range(3):
            attacker_frames.append(self.manager.allocate("attacker", kind="data"))
            sprayed_pt_frames.append(self.manager.allocate("kernel", kind="page_table"))
        pt_frame = sprayed_pt_frames[0]
        attacker_table = PageTable(
            self.memory,
            base_address=self._frame_base(pt_frame.frame_number),
            entries=self.page_size // PTE_BYTES,
            page_size=self.page_size,
        )
        for index, frame in enumerate(attacker_frames):
            attacker_table.write_entry(
                index,
                PageTableEntry(present=True, writable=True, user=True, frame_number=frame.frame_number),
            )
        result.log(
            f"setup: attacker sprays {len(attacker_frames)} data frames interleaved with "
            f"{len(sprayed_pt_frames)} kernel page-table frames; its own page table lives in "
            f"kernel frame {pt_frame.frame_number}, victim secret in frame {victim_frame.frame_number}"
        )
        tables = {"attacker": attacker_table, "victim": victim_table}
        return attacker_table, tables, pt_frame.frame_number, victim_frame.frame_number

    def _attacker_owns(self, byte_address: int) -> bool:
        frame = byte_address // self.page_size
        return frame in self.manager.frames and self.manager.owner_of(frame) == "attacker"

    def _find_exploitable_flip(
        self, attacker_table: PageTable, target_frames: List[int]
    ) -> Optional[Tuple[int, int, int, Tuple[int, int]]]:
        """Find (pte_index, pfn_bit, new_frame, aggressor_address_bit).

        The flip must (a) turn an attacker PTE's frame number into one of the
        target frames, (b) flip a stored 0 into a 1 (the SET-direction
        disturbance of the physics model) and (c) have an attacker-owned
        aggressor cell physically adjacent to the victim bit.
        """
        for index in range(attacker_table.entries):
            entry = attacker_table.read_entry(index)
            if not entry.present:
                continue
            for bit in range(16):  # PFN bits reachable within the scenario's frame count
                new_frame = entry.frame_number ^ (1 << bit)
                if new_frame not in target_frames:
                    continue
                if entry.frame_number & (1 << bit):
                    continue  # would need a 1 -> 0 flip; SET disturbance only flips 0 -> 1
                pte_address = attacker_table.entry_address(index)
                from ..memory.pagetable import PFN_SHIFT

                absolute_bit = PFN_SHIFT + bit
                victim_byte = pte_address + absolute_bit // 8
                victim_bit = absolute_bit % 8
                for aggressor_address, aggressor_bit in self.mapping.aggressor_addresses_for(
                    victim_byte, victim_bit
                ):
                    if self._attacker_owns(aggressor_address):
                        return index, bit, new_frame, (aggressor_address, aggressor_bit)
        return None

    # ------------------------------------------------------------------

    def run(self) -> ScenarioResult:
        """Run the full exploit chain and return the narrated result."""
        result = ScenarioResult(name="privilege_escalation", success=False)
        attacker_table, tables, pt_frame, victim_frame = self._setup(result)

        result.isolation_before = audit_isolation(tables, self.manager)
        result.log(
            "audit before attack: isolation "
            + ("intact" if result.isolation_before.intact else "ALREADY violated")
        )
        if not result.isolation_before.intact:
            raise AttackError("scenario setup must start from an intact isolation state")

        target_frames = [page.frame_number for page in self.manager.page_tables_of("kernel")]
        exploit = self._find_exploitable_flip(attacker_table, target_frames)
        if exploit is None:
            result.log("no exploitable PTE bit found (no adjacent attacker-owned aggressor)")
            return result
        pte_index, pfn_bit, new_frame, (aggressor_address, aggressor_bit) = exploit
        result.log(
            f"attacker targets PTE {pte_index}: flipping PFN bit {pfn_bit} redirects it to "
            f"page-table frame {new_frame}; aggressor cell found at attacker address "
            f"{aggressor_address:#x} bit {aggressor_bit}"
        )

        pulses = self.disturbance.same_line_pulses
        flips = self.memory.hammer(aggressor_address, aggressor_bit, pulses)
        result.attack_time_s += self.memory.hammer_time_s(pulses)
        result.log(f"hammering aggressor cell for {pulses} pulses", pulses=pulses)
        if not flips:
            result.log("no flip occurred — attack failed")
            return result
        result.log(
            "disturbance flip landed at "
            + ", ".join(f"{flip.byte_address:#x}[{flip.bit_index}]" for flip in flips)
        )

        # The attacker's view after the flip.
        flipped_entry = attacker_table.read_entry(pte_index)
        result.log(
            f"PTE {pte_index} now points to frame {flipped_entry.frame_number} "
            f"(owner: {self.manager.owner_of(flipped_entry.frame_number)})"
        )

        result.isolation_after = audit_isolation(tables, self.manager)
        if result.isolation_after.intact:
            result.log("isolation audit still intact — attack failed")
            return result
        result.log(
            f"isolation VIOLATED: {len(result.isolation_after.violations_of('attacker'))} "
            "attacker mapping(s) now reach foreign frames"
        )

        # With write access to a page-table frame, the attacker remaps one of
        # its own virtual pages onto the victim's secret frame and reads it.
        hijacked_table = PageTable(
            self.memory,
            base_address=self._frame_base(flipped_entry.frame_number),
            entries=self.page_size // PTE_BYTES,
            page_size=self.page_size,
        )
        spare_index = hijacked_table.entries - 1
        hijacked_table.write_entry(
            spare_index,
            PageTableEntry(present=True, writable=True, user=True, frame_number=victim_frame),
        )
        physical, _ = hijacked_table.translate(spare_index * self.page_size)
        secret = self.memory.read_block(physical, 16)
        result.payload = secret
        result.log(f"attacker exfiltrates victim secret: {secret!r}")
        result.success = True
        return result


class DenialOfServiceScenario:
    """ECC-exhaustion denial of service through repeated disturbance flips."""

    def __init__(
        self,
        disturbance: Optional[DisturbanceProfile] = None,
        mapping: Optional[AddressMapping] = None,
        ecc_word_bytes: int = 8,
    ):
        self.mapping = mapping if mapping is not None else AddressMapping(rows=64, columns=64, tiles_per_bank=4, banks=1)
        self.disturbance = disturbance if disturbance is not None else DisturbanceProfile()
        self.ecc = HammingSecDed(data_bits=ecc_word_bytes * 8)
        self.memory = ReramMemory(
            mapping=self.mapping,
            disturbance=self.disturbance,
            ecc=self.ecc,
            ecc_word_bytes=ecc_word_bytes,
        )
        self.ecc_word_bytes = ecc_word_bytes

    def run(self, victim_address: int = 0x100) -> ScenarioResult:
        """Flip two bits of the same ECC word to defeat single-error correction."""
        result = ScenarioResult(name="denial_of_service", success=False)
        word_base = (victim_address // self.ecc_word_bytes) * self.ecc_word_bytes
        self.memory.write_block(word_base, bytes([0x00] * self.ecc_word_bytes))
        result.log(f"victim data word written at {word_base:#x} (ECC protected)")

        flipped_bits: List[Tuple[int, int]] = []
        pulses_per_flip = self.disturbance.same_line_pulses
        for byte_offset in range(self.ecc_word_bytes):
            if len(flipped_bits) >= 2:
                break
            for bit in range(8):
                victim_byte = word_base + byte_offset
                aggressors = self.mapping.aggressor_addresses_for(victim_byte, bit)
                outside = [
                    (address, abit)
                    for address, abit in aggressors
                    if not word_base <= address < word_base + self.ecc_word_bytes
                ]
                if not outside:
                    continue
                address, abit = outside[0]
                flips = self.memory.hammer(address, abit, pulses_per_flip)
                result.attack_time_s += self.memory.hammer_time_s(pulses_per_flip)
                result.log(
                    f"hammering {address:#x}[{abit}] adjacent to victim bit {victim_byte:#x}[{bit}]",
                    pulses=pulses_per_flip,
                )
                landed = [f for f in flips if word_base <= f.byte_address < word_base + self.ecc_word_bytes]
                if landed:
                    flipped_bits.extend((f.byte_address, f.bit_index) for f in landed)
                    result.log(f"flip landed in the victim word ({len(flipped_bits)} so far)")
                if len(flipped_bits) >= 2:
                    break

        before_failures = self.memory.ecc_detected_failures
        self.memory.read_block(word_base, self.ecc_word_bytes)
        uncorrectable = self.memory.ecc_detected_failures > before_failures
        if len(flipped_bits) >= 2 and uncorrectable:
            result.log(
                f"read of the victim word raises an uncorrectable ECC error "
                f"({len(flipped_bits)} flips in one word) — process/machine check crash"
            )
            result.success = True
        elif len(flipped_bits) >= 1:
            result.log("only a single flip landed; ECC corrected it — denial of service failed")
        else:
            result.log("no flips landed — denial of service failed")
        return result

"""DRAM RowHammer baseline model.

Sec. VI of the paper argues that "any attack proven to work with RowHammer
could additionally work with NeuroHammer" and reuses RowHammer attack
scenarios.  To make that comparison quantitative inside the reproduction, a
compact DRAM disturbance model is provided: a DRAM cell is a capacitor whose
charge leaks faster whenever an adjacent word line is activated; the bit
flips once the stored charge falls below the sense threshold before the next
refresh.

The model is deliberately simple (charge-domain, per-activation disturbance
constants taken from the RowHammer literature) — it serves as the baseline
the scenario engine (:mod:`repro.attack.scenarios`) uses to compare attack
latencies, not as a DRAM physics study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError


@dataclass
class DramCellParameters:
    """Charge-domain parameters of a modern DRAM cell."""

    #: Storage capacitance [F].
    capacitance_f: float = 12e-15
    #: Stored "1" voltage [V].
    stored_voltage_v: float = 1.1
    #: Sense threshold below which the cell reads as flipped [V].
    sense_threshold_v: float = 0.55
    #: Natural retention leakage time constant [s].
    retention_tau_s: float = 0.5
    #: Fractional charge lost per adjacent-row activation (single-sided).
    disturbance_per_activation: float = 4e-6
    #: Row-cycle time: minimum delay between two activations of a row [s].
    row_cycle_time_s: float = 46e-9
    #: DRAM refresh interval [s].
    refresh_interval_s: float = 64e-3

    def __post_init__(self) -> None:
        if self.capacitance_f <= 0 or self.stored_voltage_v <= 0:
            raise ConfigurationError("capacitance and stored voltage must be positive")
        if not 0 < self.sense_threshold_v < self.stored_voltage_v:
            raise ConfigurationError("sense threshold must lie below the stored voltage")
        if self.disturbance_per_activation <= 0 or self.disturbance_per_activation >= 1:
            raise ConfigurationError("disturbance_per_activation must be in (0, 1)")
        if self.row_cycle_time_s <= 0 or self.refresh_interval_s <= 0:
            raise ConfigurationError("timing parameters must be positive")


@dataclass
class RowHammerResult:
    """Outcome of a RowHammer estimate."""

    flipped: bool
    activations: int
    attack_time_s: float
    #: True if the required activations fit within one refresh interval.
    fits_in_refresh_window: bool


class RowHammerModel:
    """Activation-count estimator for DRAM disturbance errors."""

    def __init__(self, parameters: DramCellParameters = None):
        self.parameters = parameters if parameters is not None else DramCellParameters()

    def activations_to_flip(self, double_sided: bool = True) -> int:
        """Adjacent-row activations needed to pull the victim below threshold.

        The victim's normalised charge decays by ``disturbance_per_activation``
        per aggressor activation (twice that for double-sided hammering); the
        flip needs the charge ratio to fall below threshold/stored.
        """
        p = self.parameters
        per_activation = p.disturbance_per_activation * (2.0 if double_sided else 1.0)
        target_ratio = p.sense_threshold_v / p.stored_voltage_v
        # charge_ratio(n) = (1 - per_activation)^n  =>  n = ln(target)/ln(1-d)
        activations = math.log(target_ratio) / math.log(1.0 - per_activation)
        return int(math.ceil(activations))

    def estimate(self, double_sided: bool = True) -> RowHammerResult:
        """Full estimate including attack time and refresh-window feasibility."""
        p = self.parameters
        activations = self.activations_to_flip(double_sided)
        attack_time = activations * p.row_cycle_time_s
        return RowHammerResult(
            flipped=True,
            activations=activations,
            attack_time_s=attack_time,
            fits_in_refresh_window=attack_time < p.refresh_interval_s,
        )


@dataclass
class AttackComparison:
    """Side-by-side comparison of a NeuroHammer and a RowHammer campaign."""

    neurohammer_pulses: int
    neurohammer_time_s: float
    rowhammer_activations: int
    rowhammer_time_s: float

    @property
    def pulse_ratio(self) -> float:
        """RowHammer activations per NeuroHammer pulse (> 1: NeuroHammer needs fewer)."""
        if self.neurohammer_pulses == 0:
            return math.inf
        return self.rowhammer_activations / self.neurohammer_pulses

    @property
    def time_ratio(self) -> float:
        """RowHammer attack time per NeuroHammer attack time."""
        if self.neurohammer_time_s == 0:
            return math.inf
        return self.rowhammer_time_s / self.neurohammer_time_s


def compare_attacks(
    neurohammer_pulses: int,
    neurohammer_time_s: float,
    dram_parameters: Optional[DramCellParameters] = None,
    double_sided: bool = True,
) -> AttackComparison:
    """Build the Sec. VI comparison table entry."""
    rowhammer = RowHammerModel(dram_parameters).estimate(double_sided=double_sided)
    return AttackComparison(
        neurohammer_pulses=neurohammer_pulses,
        neurohammer_time_s=neurohammer_time_s,
        rowhammer_activations=rowhammer.activations,
        rowhammer_time_s=rowhammer.attack_time_s,
    )

"""Yield and reliability scenarios built on the Monte-Carlo engine.

The Sec. VI scenarios (:mod:`repro.attack.scenarios`) ask whether one
deterministic exploit chain succeeds; these scenarios ask the manufacturing /
fleet-level question: across device-to-device variation, how exposed is a
whole memory array?

* :class:`YieldScenario` — the defender's view.  Given a hammer-pulse budget
  an attacker can realistically spend, what fraction of cells flips, what is
  the induced bit-error rate, and what fraction of whole arrays survives
  untouched?  The scenario *succeeds* when the array yield stays above the
  required threshold.
* :class:`WorstCaseCornerScenario` — the attacker's view.  Across the sampled
  population, how cheap does the attack get at the weakest process corner,
  and does that corner fit inside the pulse budget?  The scenario *succeeds*
  (for the attacker) when at least the target fraction of cells is flippable
  within budget.

Both reuse :class:`~repro.attack.scenarios.ScenarioResult` for narration, so
they print and test exactly like the exploit scenarios.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import AttackConfig, SimulationConfig
from ..errors import AttackError
from .scenarios import ScenarioResult


class YieldScenario:
    """Array-level yield under a NeuroHammer pulse budget (defender view)."""

    def __init__(
        self,
        montecarlo=None,
        simulation: Optional[SimulationConfig] = None,
        attack: Optional[AttackConfig] = None,
        cells_per_array: int = 1024,
        min_yield: float = 0.99,
    ):
        # Imported here: repro.montecarlo imports the attack package.
        from ..montecarlo.engine import MonteCarloConfig, MonteCarloEngine

        if cells_per_array < 1:
            raise AttackError("cells_per_array must be at least 1")
        if not 0.0 < min_yield <= 1.0:
            raise AttackError("min_yield must be in (0, 1]")
        self.montecarlo = montecarlo if montecarlo is not None else MonteCarloConfig()
        self.engine = MonteCarloEngine(self.montecarlo, simulation=simulation, attack=attack)
        self.cells_per_array = cells_per_array
        self.min_yield = min_yield

    def run(self, pulse_budget: Optional[int] = None) -> ScenarioResult:
        """Evaluate the population and report cell BER and array yield."""
        attack = self.engine.attack
        budget = pulse_budget if pulse_budget is not None else attack.max_pulses
        if budget < 1:
            raise AttackError("pulse_budget must be at least 1")
        result = ScenarioResult(name="yield", success=False)
        result.log(
            f"population: {self.montecarlo.n_samples} sampled victim cells, "
            f"{len(self.montecarlo.distributions)} varied parameters, seed {self.montecarlo.seed}"
        )
        outcome = self.engine.run()
        result.log(
            f"evaluated through the {outcome.engine} engine in {outcome.duration_s:.2f}s "
            f"({outcome.valid_count}/{outcome.n_samples} cells valid)"
        )

        if outcome.adaptive is not None:
            result.log(
                f"adaptive sampling stopped after {outcome.n_samples} samples "
                f"({outcome.adaptive.stop_reason}; CI half-width "
                f"{outcome.adaptive.state.half_width:.4f})"
            )
        within_budget = outcome.flipped & outcome.valid & (outcome.pulses <= budget)
        exposed = int(within_budget.sum())
        valid = outcome.valid_count
        # The estimator dispatches on importance weights, so a tilted
        # population reports the nominal (reweighted) BER, not the proposal's.
        estimator = outcome.event_estimator(within_budget)
        cell_ber = float(estimator.estimate)
        ber_low, ber_high = estimator.interval()
        # A whole array survives when none of its cells flips; cells are
        # independent draws from the same population.
        array_yield = float((1.0 - cell_ber) ** self.cells_per_array)
        # Propagate the BER interval through the same yield model: the upper
        # BER bound gives the conservative (lower) yield bound.
        yield_low = float((1.0 - ber_high) ** self.cells_per_array)
        yield_high = float((1.0 - ber_low) ** self.cells_per_array)
        result.log(
            f"under a budget of {budget} pulses, {exposed}/{valid} cells flip "
            f"(bit-error rate {cell_ber:.4f})",
            pulses=int(outcome.pulses[within_budget].sum()) if exposed else 0,
        )
        result.log(
            f"array yield at {self.cells_per_array} cells/array: {array_yield:.4f} "
            f"(required {self.min_yield:.4f})"
        )
        result.attack_time_s = float(outcome.wall_clock_s[outcome.valid].max()) if valid else 0.0
        result.stats = {
            "pulse_budget": budget,
            "cells_exposed": exposed,
            "cells_valid": valid,
            "cell_bit_error_rate": cell_ber,
            "cell_ber_ci_low": float(ber_low),
            "cell_ber_ci_high": float(ber_high),
            "ci_confidence": float(estimator.confidence),
            "cells_per_array": self.cells_per_array,
            "array_yield": array_yield,
            "array_yield_ci_low": yield_low,
            "array_yield_ci_high": yield_high,
            "min_yield": self.min_yield,
        }
        result.success = array_yield >= self.min_yield
        result.log(
            "yield requirement " + ("met — array survives the budget" if result.success else "VIOLATED")
        )
        return result


class WorstCaseCornerScenario:
    """Cheapest-corner attack cost across process variation (attacker view)."""

    def __init__(
        self,
        montecarlo=None,
        simulation: Optional[SimulationConfig] = None,
        attack: Optional[AttackConfig] = None,
        target_fraction: float = 0.5,
    ):
        from ..montecarlo.engine import MonteCarloConfig, MonteCarloEngine

        if not 0.0 < target_fraction <= 1.0:
            raise AttackError("target_fraction must be in (0, 1]")
        self.montecarlo = montecarlo if montecarlo is not None else MonteCarloConfig()
        self.engine = MonteCarloEngine(self.montecarlo, simulation=simulation, attack=attack)
        self.target_fraction = target_fraction

    def run(self, pulse_budget: Optional[int] = None) -> ScenarioResult:
        """Find the weakest corner and the budget covering the target fraction."""
        attack = self.engine.attack
        budget = pulse_budget if pulse_budget is not None else attack.max_pulses
        result = ScenarioResult(name="worst_case_corner", success=False)
        outcome = self.engine.run()
        result.log(
            f"evaluated {outcome.n_samples} sampled cells through the {outcome.engine} engine"
        )
        flipped = outcome.pulses_to_flip()
        if flipped.size == 0:
            result.log("no sampled cell flips within the configured pulse budget — attack defeated")
            result.stats = {"pulse_budget": budget, "flippable_fraction": 0.0}
            return result

        cheapest = int(flipped.min())
        quantile = float(np.quantile(flipped, self.target_fraction))
        covered = outcome.flipped & outcome.valid & (outcome.pulses <= budget)
        fraction = float(covered.sum() / outcome.valid_count) if outcome.valid_count else 0.0
        result.log(
            f"weakest corner flips after {cheapest} pulses; covering "
            f"{self.target_fraction:.0%} of cells needs {quantile:.0f} pulses",
            pulses=cheapest,
        )
        result.stats = {
            "pulse_budget": budget,
            "cheapest_pulses": cheapest,
            "pulses_for_target_fraction": quantile,
            "target_fraction": self.target_fraction,
            "flippable_fraction": fraction,
        }
        result.success = fraction >= self.target_fraction
        result.log(
            f"{fraction:.1%} of cells are flippable within {budget} pulses — attack "
            + ("viable at the target scale" if result.success else "below the target scale")
        )
        return result

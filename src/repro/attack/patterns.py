"""Attack patterns: which cells are hammered and which cell is the victim.

Fig. 3(e-h) of the paper sketches different attack patterns (the preprint
text references them in the caption of Fig. 3d).  This module defines the
canonical patterns used by the reproduction:

* ``single``       — one aggressor next to the victim on the same word line
                     (the pattern used for Fig. 3a-c),
* ``double_row``   — two aggressors flanking the victim on its word line
                     (the ReRAM analogue of double-sided RowHammer),
* ``double_column``— two aggressors flanking the victim on its bit line,
* ``quad``         — four aggressors surrounding the victim (both lines),
* ``row_sweep``    — every other cell of the victim's word line hammered.

A pattern also records how its aggressors can be driven: aggressors that
share only a row *or* only a column can be pulsed simultaneously without
fully selecting unintended cells; mixed patterns must be hammered in an
interleaved (time-multiplexed) fashion, grouped into phases that are
individually safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import CrossbarGeometry
from ..errors import AttackError
from ..circuit.drivers import FULL_SELECTED, classify_cells

Cell = Tuple[int, int]


@dataclass
class HammerPhase:
    """A group of aggressors that are pulsed simultaneously."""

    aggressors: Tuple[Cell, ...]

    def __post_init__(self) -> None:
        if not self.aggressors:
            raise AttackError("a hammer phase needs at least one aggressor")
        self.aggressors = tuple(tuple(cell) for cell in self.aggressors)


@dataclass
class AttackPattern:
    """A named aggressor/victim layout."""

    name: str
    victim: Cell
    aggressors: Tuple[Cell, ...]
    #: Phases in which the aggressors are hammered; by default each phase is
    #: the largest simultaneous-safe grouping.
    phases: Tuple[HammerPhase, ...] = field(default=())

    def __post_init__(self) -> None:
        self.victim = tuple(self.victim)
        self.aggressors = tuple(tuple(cell) for cell in self.aggressors)
        if not self.aggressors:
            raise AttackError(f"pattern {self.name!r} has no aggressors")
        if self.victim in self.aggressors:
            raise AttackError(f"pattern {self.name!r}: victim cannot be an aggressor")
        if not self.phases:
            self.phases = tuple(HammerPhase((cell,)) for cell in self.aggressors)
        phase_cells = [cell for phase in self.phases for cell in phase.aggressors]
        if sorted(phase_cells) != sorted(self.aggressors):
            raise AttackError(f"pattern {self.name!r}: phases do not cover the aggressors exactly once")

    @property
    def aggressor_count(self) -> int:
        """Number of distinct aggressor cells."""
        return len(self.aggressors)

    @property
    def phase_count(self) -> int:
        """Number of hammer phases per round."""
        return len(self.phases)

    def validate(self, geometry: CrossbarGeometry) -> None:
        """Check the pattern fits the geometry and never full-selects the victim."""
        geometry.validate_cell(*self.victim)
        for cell in self.aggressors:
            geometry.validate_cell(*cell)
        for phase in self.phases:
            classification = classify_cells(geometry, phase.aggressors)
            if classification[self.victim] == FULL_SELECTED:
                raise AttackError(
                    f"pattern {self.name!r}: phase {phase.aggressors} fully selects the victim; "
                    "this would be a write, not a disturbance attack"
                )
            unintended = [
                cell
                for cell, kind in classification.items()
                if kind == FULL_SELECTED and cell not in phase.aggressors
            ]
            if unintended:
                raise AttackError(
                    f"pattern {self.name!r}: phase {phase.aggressors} fully selects unintended cells "
                    f"{unintended}; split the phase"
                )

    def shares_line_with_victim(self, aggressor: Cell) -> bool:
        """True if the aggressor shares a word or bit line with the victim."""
        return aggressor[0] == self.victim[0] or aggressor[1] == self.victim[1]


def _grouped_phases(aggressors: Sequence[Cell]) -> Tuple[HammerPhase, ...]:
    """Group aggressors into simultaneous-safe phases.

    Aggressors that all share one row (or all share one column) can be pulsed
    together; anything else is split into per-row groups.
    """
    rows = {cell[0] for cell in aggressors}
    columns = {cell[1] for cell in aggressors}
    if len(rows) == 1 or len(columns) == 1:
        return (HammerPhase(tuple(aggressors)),)
    by_row: Dict[int, List[Cell]] = {}
    for cell in aggressors:
        by_row.setdefault(cell[0], []).append(cell)
    return tuple(HammerPhase(tuple(cells)) for cells in by_row.values())


def single_aggressor(geometry: CrossbarGeometry, victim: Optional[Cell] = None) -> AttackPattern:
    """One aggressor adjacent to the victim on the same word line.

    This is the paper's default experiment: the aggressor is the centre cell
    and the victim is its nearest neighbour on the same row.
    """
    if victim is None:
        centre = geometry.centre_cell()
        victim = (centre[0], centre[1] + 1) if centre[1] + 1 < geometry.columns else (centre[0], centre[1] - 1)
    victim = tuple(victim)
    geometry.validate_cell(*victim)
    candidates = [(victim[0], victim[1] - 1), (victim[0], victim[1] + 1)]
    aggressor = next(
        (cell for cell in candidates if 0 <= cell[1] < geometry.columns), None
    )
    if aggressor is None:
        raise AttackError("victim has no same-row neighbour for a single-aggressor pattern")
    return AttackPattern(name="single", victim=victim, aggressors=(aggressor,))


def double_sided_row(geometry: CrossbarGeometry, victim: Optional[Cell] = None) -> AttackPattern:
    """Two aggressors flanking the victim on its word line."""
    if victim is None:
        victim = geometry.centre_cell()
    victim = tuple(victim)
    geometry.validate_cell(*victim)
    left = (victim[0], victim[1] - 1)
    right = (victim[0], victim[1] + 1)
    aggressors = [cell for cell in (left, right) if 0 <= cell[1] < geometry.columns]
    if len(aggressors) < 2:
        raise AttackError("victim must have neighbours on both sides of its row")
    return AttackPattern(
        name="double_row",
        victim=victim,
        aggressors=tuple(aggressors),
        phases=(HammerPhase(tuple(aggressors)),),
    )


def double_sided_column(geometry: CrossbarGeometry, victim: Optional[Cell] = None) -> AttackPattern:
    """Two aggressors flanking the victim on its bit line."""
    if victim is None:
        victim = geometry.centre_cell()
    victim = tuple(victim)
    geometry.validate_cell(*victim)
    above = (victim[0] - 1, victim[1])
    below = (victim[0] + 1, victim[1])
    aggressors = [cell for cell in (above, below) if 0 <= cell[0] < geometry.rows]
    if len(aggressors) < 2:
        raise AttackError("victim must have neighbours on both sides of its column")
    return AttackPattern(
        name="double_column",
        victim=victim,
        aggressors=tuple(aggressors),
        phases=(HammerPhase(tuple(aggressors)),),
    )


def quad_surround(geometry: CrossbarGeometry, victim: Optional[Cell] = None) -> AttackPattern:
    """Four aggressors surrounding the victim (both neighbours on both lines).

    The row pair and the column pair are hammered in alternating phases
    because pulsing all four at once would fully select the victim.
    """
    if victim is None:
        victim = geometry.centre_cell()
    victim = tuple(victim)
    geometry.validate_cell(*victim)
    row_pair = [
        cell
        for cell in ((victim[0], victim[1] - 1), (victim[0], victim[1] + 1))
        if 0 <= cell[1] < geometry.columns
    ]
    column_pair = [
        cell
        for cell in ((victim[0] - 1, victim[1]), (victim[0] + 1, victim[1]))
        if 0 <= cell[0] < geometry.rows
    ]
    if len(row_pair) < 2 or len(column_pair) < 2:
        raise AttackError("quad pattern needs a victim with all four neighbours present")
    return AttackPattern(
        name="quad",
        victim=victim,
        aggressors=tuple(row_pair + column_pair),
        phases=(HammerPhase(tuple(row_pair)), HammerPhase(tuple(column_pair))),
    )


def row_sweep(geometry: CrossbarGeometry, victim: Optional[Cell] = None) -> AttackPattern:
    """Hammer every other cell of the victim's word line simultaneously."""
    if victim is None:
        victim = geometry.centre_cell()
    victim = tuple(victim)
    geometry.validate_cell(*victim)
    aggressors = tuple(
        (victim[0], column) for column in range(geometry.columns) if column != victim[1]
    )
    if not aggressors:
        raise AttackError("row sweep needs at least one other cell on the victim's row")
    return AttackPattern(
        name="row_sweep",
        victim=victim,
        aggressors=aggressors,
        phases=(HammerPhase(aggressors),),
    )


def standard_patterns(geometry: CrossbarGeometry, victim: Optional[Cell] = None) -> Dict[str, AttackPattern]:
    """The pattern set evaluated by the Fig. 3d style experiment."""
    patterns = {}
    for factory in (single_aggressor, double_sided_row, double_sided_column, quad_surround, row_sweep):
        try:
            pattern = factory(geometry, victim)
        except AttackError:
            continue
        pattern.validate(geometry)
        patterns[pattern.name] = pattern
    if not patterns:
        raise AttackError("no standard pattern fits this geometry")
    return patterns

"""Analysis helpers: susceptibility metrics around the NeuroHammer mechanism.

These functions quantify the individual ingredients of the attack so they can
be studied (and tested) in isolation from the full campaign engine:

* how strongly the switching rate of a VCM cell accelerates with temperature,
* how much crosstalk (alpha) is needed before a given pulse budget suffices,
* how the four phases of Fig. 1 translate into concrete numbers for a given
  configuration (used by the quickstart example to narrate the attack).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K, DEFAULT_SET_VOLTAGE_V
from ..devices.base import DeviceState, MemristorModel
from ..devices.jart_vcm import JartVcmModel
from ..devices.kinetics import pulses_to_switch, time_to_switch
from ..devices.thermal import solve_operating_point
from ..errors import AttackError

Cell = Tuple[int, int]


def switching_rate(
    model: MemristorModel,
    voltage_v: float,
    temperature_k: float,
    x: float = 0.0,
) -> float:
    """Victim state rate dx/dt at a fixed voltage and filament temperature."""
    state = DeviceState(x=x, filament_temperature_k=temperature_k)
    return model.state_derivative(voltage_v, state)


def thermal_acceleration_factor(
    model: MemristorModel,
    voltage_v: float,
    hot_temperature_k: float,
    cold_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    x: float = 0.0,
) -> float:
    """How much faster the victim switches when heated (phase 3 of Fig. 1)."""
    hot = switching_rate(model, voltage_v, hot_temperature_k, x)
    cold = switching_rate(model, voltage_v, cold_temperature_k, x)
    if cold <= 0:
        return math.inf if hot > 0 else 1.0
    return hot / cold


def half_select_disturbance_time(
    model: MemristorModel,
    half_select_voltage_v: float,
    crosstalk_temperature_k: float,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    flip_threshold: float = 0.5,
    max_time_s: float = 10.0,
) -> float:
    """Biased time until a half-selected HRS cell crosses the flip threshold [s]."""
    result = time_to_switch(
        model,
        half_select_voltage_v,
        x_start=0.0,
        x_target=flip_threshold,
        ambient_temperature_k=ambient_temperature_k,
        crosstalk_temperature_k=crosstalk_temperature_k,
        max_time_s=max_time_s,
    )
    return result.time_s if result.switched else math.inf


def minimum_alpha_to_flip(
    model: MemristorModel,
    pulse_length_s: float,
    pulse_budget: int,
    aggressor_rise_k: float,
    half_select_voltage_v: float = DEFAULT_SET_VOLTAGE_V / 2.0,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    flip_threshold: float = 0.5,
    tolerance: float = 1e-3,
) -> Optional[float]:
    """Smallest alpha value for which the flip fits into the pulse budget.

    Returns ``None`` if even full coupling (alpha = 1) is insufficient.  Used
    to reason about how dense a crossbar must be before NeuroHammer becomes
    practical — the design question behind the paper's Fig. 3b.
    """
    if pulse_budget < 1 or pulse_length_s <= 0:
        raise AttackError("pulse budget and pulse length must be positive")

    def flips(alpha: float) -> bool:
        result = pulses_to_switch(
            model,
            half_select_voltage_v,
            pulse_length_s,
            x_start=0.0,
            x_target=flip_threshold,
            ambient_temperature_k=ambient_temperature_k,
            crosstalk_temperature_k=alpha * aggressor_rise_k,
            max_pulses=pulse_budget,
        )
        return result.flipped

    if not flips(1.0):
        return None
    if flips(0.0):
        return 0.0
    low, high = 0.0, 1.0
    while high - low > tolerance:
        mid = 0.5 * (low + high)
        if flips(mid):
            high = mid
        else:
            low = mid
    return high


@dataclass
class PhaseNarrative:
    """Quantified description of the four NeuroHammer phases (Fig. 1)."""

    #: Phase 1 — hammering: aggressor current under the SET pulse [A].
    aggressor_current_a: float
    #: Phase 2 — temperature increase: aggressor filament temperature [K].
    aggressor_temperature_k: float
    #: Phase 2 — crosstalk temperature delivered to the victim [K].
    victim_crosstalk_k: float
    #: Phase 3 — switching-kinetics acceleration factor of the victim.
    acceleration_factor: float
    #: Phase 4 — biased time until the victim flips [s].
    time_to_flip_s: float
    #: Phase 4 — pulses until the victim flips for the given pulse length.
    pulses_to_flip: int
    pulse_length_s: float

    def as_lines(self) -> List[str]:
        """Render the narrative as printable lines (used by the examples)."""
        return [
            f"Phase 1 - hammering:      aggressor draws {self.aggressor_current_a * 1e6:.1f} uA per pulse",
            f"Phase 2 - heating:        aggressor filament at {self.aggressor_temperature_k:.0f} K, "
            f"victim receives +{self.victim_crosstalk_k:.1f} K of crosstalk",
            f"Phase 3 - kinetics:       victim switching rate accelerated {self.acceleration_factor:.0f}x",
            f"Phase 4 - bit-flip:       after {self.pulses_to_flip} pulses "
            f"({self.time_to_flip_s * 1e6:.1f} us of half-select stress at "
            f"{self.pulse_length_s * 1e9:.0f} ns per pulse)",
        ]


def narrate_attack(
    model: Optional[MemristorModel] = None,
    alpha: float = 0.115,
    pulse_length_s: float = 50e-9,
    amplitude_v: float = DEFAULT_SET_VOLTAGE_V,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    flip_threshold: float = 0.5,
    max_pulses: int = 10_000_000,
) -> PhaseNarrative:
    """Compute the four-phase narrative for a single-aggressor attack."""
    model = model if model is not None else JartVcmModel()
    aggressor = solve_operating_point(model, amplitude_v, 1.0, ambient_temperature_k)
    crosstalk = alpha * aggressor.temperature_rise_k
    half_select = amplitude_v / 2.0

    victim_hot = solve_operating_point(
        model, half_select, 0.0, ambient_temperature_k, crosstalk_temperature_k=crosstalk
    )
    acceleration = thermal_acceleration_factor(
        model,
        half_select,
        hot_temperature_k=victim_hot.filament_temperature_k,
        cold_temperature_k=ambient_temperature_k,
    )
    count = pulses_to_switch(
        model,
        half_select,
        pulse_length_s,
        x_start=0.0,
        x_target=flip_threshold,
        ambient_temperature_k=ambient_temperature_k,
        crosstalk_temperature_k=crosstalk,
        max_pulses=max_pulses,
    )
    return PhaseNarrative(
        aggressor_current_a=aggressor.current_a,
        aggressor_temperature_k=aggressor.filament_temperature_k,
        victim_crosstalk_k=crosstalk,
        acceleration_factor=acceleration,
        time_to_flip_s=count.stress_time_s,
        pulses_to_flip=count.pulses,
        pulse_length_s=pulse_length_s,
    )

"""The NeuroHammer attack engine.

Implements the four phases of the attack exactly as described in Sec. III of
the paper:

1. **Hammering** — the aggressor cell(s), initially in LRS to maximise the
   current, are pulsed with the full SET voltage while the V/2 scheme keeps
   the victim under constant half-select stress.
2. **Temperature increase** — every pulse dissipates power in the aggressor
   filament; the crosstalk hub (Eq. 5, alpha values) raises the victim's
   filament temperature, on top of the victim's own (small) half-select
   self-heating (Eq. 6).
3. **Switching kinetics** — the elevated temperature exponentially
   accelerates the victim's ion-migration kinetics.
4. **Bit-flip** — the repeated half-select pulses, harmless at ambient
   temperature, now gradually move the victim's state until it crosses the
   flip threshold.

Two execution paths are provided and validated against each other:

* :meth:`NeuroHammer.run` — the fast quasi-static campaign used for the
  figure-scale sweeps (10^2..10^7 pulses per point).  The aggressor bias is
  periodic and the victim state drifts slowly, so the electro-thermal
  operating point is solved once per hammer phase and the victim's state ODE
  is integrated cell-locally with adaptive pulse batching.
* :meth:`NeuroHammer.run_transient` — the full circuit-level transient
  simulation, pulse by pulse, used by tests and short demonstrations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import AttackConfig, CrossbarGeometry, PulseConfig
from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K, DEFAULT_SET_VOLTAGE_V
from ..devices.base import DeviceState
from ..devices.thermal import solve_operating_point
from ..errors import AttackError, ConfigurationError
from ..circuit.crossbar import CrossbarArray
from ..circuit.drivers import BiasPattern, write_bias
from ..circuit.pulses import StimulusSchedule, StimulusSegment
from ..circuit.transient import TransientSimulator
from .patterns import AttackPattern, HammerPhase, single_aggressor

Cell = Tuple[int, int]


@dataclass
class PhaseOperatingPoint:
    """Electro-thermal conditions the victim experiences during one phase."""

    phase: HammerPhase
    #: Voltage across the victim cell during this phase [V].
    victim_voltage_v: float
    #: Crosstalk temperature delivered to the victim during this phase [K].
    victim_crosstalk_k: float
    #: Hottest aggressor filament temperature of this phase [K].
    aggressor_temperature_k: float
    #: Aggressor cell current of the hottest aggressor [A].
    aggressor_current_a: float
    #: Cell voltage of that same max-current aggressor [V].
    aggressor_voltage_v: float = 0.0


@dataclass
class AttackResult:
    """Outcome of a NeuroHammer campaign."""

    pattern_name: str
    victim: Cell
    aggressors: Tuple[Cell, ...]
    flipped: bool
    #: Total number of hammer pulses applied (across all phases).
    pulses: int
    #: Cumulative biased (active) time of the campaign [s].
    stress_time_s: float
    #: Total campaign wall-clock time including idle periods [s].
    wall_clock_s: float
    #: Final normalised state of the victim.
    victim_final_x: float
    #: Victim filament temperature while being hammered [K].
    victim_temperature_k: float
    #: Per-phase operating points.
    phase_points: List[PhaseOperatingPoint] = field(default_factory=list)
    #: Pulse length used [s].
    pulse_length_s: float = 0.0
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K

    @property
    def pulses_per_aggressor(self) -> float:
        """Average number of pulses each aggressor received."""
        return self.pulses / max(len(self.aggressors), 1)

    @property
    def hammer_energy_j(self) -> float:
        """Approximate electrical energy spent hammering [J]."""
        energy = 0.0
        for point in self.phase_points:
            pulses_of_phase = self.pulses / max(len(self.phase_points), 1)
            energy += (
                abs(point.aggressor_current_a)
                * DEFAULT_SET_VOLTAGE_V
                * self.pulse_length_s
                * pulses_of_phase
                * len(point.phase.aggressors)
            )
        return energy


class NeuroHammer:
    """Drives NeuroHammer campaigns on a :class:`CrossbarArray`."""

    def __init__(
        self,
        crossbar: Optional[CrossbarArray] = None,
        geometry: Optional[CrossbarGeometry] = None,
        ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
        crosstalk_backend: str = "auto",
    ):
        if crossbar is None:
            crossbar = CrossbarArray(
                geometry=geometry,
                ambient_temperature_k=ambient_temperature_k,
                crosstalk_backend=crosstalk_backend,
            )
        self.crossbar = crossbar

    # ------------------------------------------------------------------
    # setup helpers
    # ------------------------------------------------------------------

    def prepare(self, pattern: AttackPattern, victim_x: float = 0.0) -> None:
        """Initialise the array for an attack: aggressors LRS, victim HRS."""
        pattern.validate(self.crossbar.geometry)
        self.crossbar.initialise_states(default_x=0.0)
        for aggressor in pattern.aggressors:
            self.crossbar.set_state(aggressor, 1.0)
        self.crossbar.set_state(pattern.victim, victim_x)

    def phase_operating_point(
        self,
        pattern: AttackPattern,
        phase: HammerPhase,
        amplitude_v: float,
        scheme: str = "v_half",
    ) -> PhaseOperatingPoint:
        """Solve the electro-thermal conditions of one hammer phase."""
        bias = write_bias(self.crossbar.geometry, phase.aggressors, amplitude_v, scheme=scheme)
        snapshot = self.crossbar.thermal_snapshot(bias)
        victim = pattern.victim
        victim_voltage = snapshot.operating_point.cell_voltage(victim)
        crosstalk = float(snapshot.crosstalk_temperatures_k[victim[0], victim[1]])
        hottest = max(
            (snapshot.cell_temperature(cell) for cell in phase.aggressors),
        )
        strongest = max(
            phase.aggressors, key=lambda cell: abs(snapshot.operating_point.cell_current(cell))
        )
        # The solve leaves elevated temperatures in the states; clear them so
        # subsequent phases start from a clean slate.
        self.crossbar.reset_temperatures()
        return PhaseOperatingPoint(
            phase=phase,
            victim_voltage_v=victim_voltage,
            victim_crosstalk_k=crosstalk,
            aggressor_temperature_k=hottest,
            aggressor_current_a=abs(snapshot.operating_point.cell_current(strongest)),
            aggressor_voltage_v=snapshot.operating_point.cell_voltage(strongest),
        )

    # ------------------------------------------------------------------
    # fast quasi-static campaign
    # ------------------------------------------------------------------

    def run(
        self,
        pattern: Optional[AttackPattern] = None,
        config: Optional[AttackConfig] = None,
        max_dx_per_batch: float = 0.02,
    ) -> AttackResult:
        """Run a campaign with the fast quasi-static integrator.

        Either an explicit ``pattern`` or an :class:`AttackConfig` (whose
        aggressors become a single simultaneous phase) must be given.
        """
        config = config if config is not None else AttackConfig()
        if pattern is None:
            pattern = self._pattern_from_config(config)
        pattern.validate(self.crossbar.geometry)
        if self.crossbar.ambient_temperature_k != config.ambient_temperature_k:
            raise ConfigurationError(
                "attack config ambient temperature does not match the crossbar; "
                "build the CrossbarArray with the same ambient_temperature_k"
            )

        self.prepare(pattern)
        pulse = config.pulse
        phase_points = [
            self.phase_operating_point(pattern, phase, pulse.amplitude_v, config.bias_scheme)
            for phase in pattern.phases
        ]

        model = self.crossbar.model
        ambient = config.ambient_temperature_k
        threshold = config.flip_threshold
        x = self.crossbar.get_state(pattern.victim).x
        pulses = 0
        stress_time = 0.0
        victim_temperature = ambient
        progressed = True

        while x < threshold and pulses < config.max_pulses and progressed:
            progressed = False
            round_dx = 0.0
            per_phase_dx: List[float] = []
            for point in phase_points:
                rate, temperature = self._victim_rate(
                    model, point, x, ambient
                )
                victim_temperature = max(victim_temperature, temperature)
                dx = max(rate, 0.0) * pulse.length_s
                per_phase_dx.append(dx)
                round_dx += dx
            if round_dx <= 0.0:
                break
            progressed = True
            remaining = threshold - x
            rounds = max(1, int(min(
                math.floor(max_dx_per_batch / round_dx) if round_dx > 0 else 1,
                math.ceil(remaining / round_dx),
            )))
            max_rounds_left = (config.max_pulses - pulses) // len(phase_points)
            if max_rounds_left >= 1:
                rounds = min(rounds, max_rounds_left)
            else:
                rounds = 1
            x = model.clamp_state(x + round_dx * rounds)
            pulses += rounds * len(phase_points)
            stress_time += rounds * len(phase_points) * pulse.length_s

        flipped = x >= threshold
        self.crossbar.set_state(pattern.victim, x)
        return AttackResult(
            pattern_name=pattern.name,
            victim=pattern.victim,
            aggressors=pattern.aggressors,
            flipped=flipped,
            pulses=pulses if flipped else min(pulses, config.max_pulses),
            stress_time_s=stress_time,
            wall_clock_s=pulses * pulse.period_s,
            victim_final_x=x,
            victim_temperature_k=victim_temperature,
            phase_points=phase_points,
            pulse_length_s=pulse.length_s,
            ambient_temperature_k=ambient,
        )

    def _victim_rate(
        self,
        model,
        point: PhaseOperatingPoint,
        x: float,
        ambient: float,
    ) -> Tuple[float, float]:
        """Victim state rate [1/s] and temperature [K] during one phase pulse."""
        operating = solve_operating_point(
            model,
            point.victim_voltage_v,
            x,
            ambient_temperature_k=ambient,
            crosstalk_temperature_k=point.victim_crosstalk_k,
        )
        state = DeviceState(x=x, filament_temperature_k=operating.filament_temperature_k)
        rate = model.state_derivative(point.victim_voltage_v, state)
        return rate, operating.filament_temperature_k

    # ------------------------------------------------------------------
    # full transient campaign (slow, exact)
    # ------------------------------------------------------------------

    def run_transient(
        self,
        pattern: Optional[AttackPattern] = None,
        config: Optional[AttackConfig] = None,
        max_pulses: Optional[int] = None,
    ) -> AttackResult:
        """Run the campaign pulse by pulse through the transient engine."""
        config = config if config is not None else AttackConfig()
        if pattern is None:
            pattern = self._pattern_from_config(config)
        pattern.validate(self.crossbar.geometry)
        self.prepare(pattern)
        pulse = config.pulse
        budget = max_pulses if max_pulses is not None else config.max_pulses

        biases = [
            write_bias(self.crossbar.geometry, phase.aggressors, pulse.amplitude_v, config.bias_scheme)
            for phase in pattern.phases
        ]
        simulator = TransientSimulator(self.crossbar, flip_threshold=config.flip_threshold)
        pulses = 0
        flipped = False
        time_s = 0.0
        victim_temperature = config.ambient_temperature_k
        while pulses < budget and not flipped:
            bias = biases[pulses % len(biases)]
            schedule = StimulusSchedule()
            schedule.append(StimulusSegment(0.0, pulse.length_s, label="hammer", payload=bias))
            result = simulator.run(schedule, stop_on_flip_of=pattern.victim)
            pulses += 1
            time_s += pulse.period_s
            if len(result.trace):
                victim_temperature = max(
                    victim_temperature,
                    float(result.trace.temperatures_k[-1][pattern.victim[0], pattern.victim[1]]),
                )
            flipped = result.first_flip(pattern.victim) is not None
        final_x = self.crossbar.get_state(pattern.victim).x
        return AttackResult(
            pattern_name=pattern.name,
            victim=pattern.victim,
            aggressors=pattern.aggressors,
            flipped=flipped,
            pulses=pulses,
            stress_time_s=pulses * pulse.length_s,
            wall_clock_s=time_s,
            victim_final_x=final_x,
            victim_temperature_k=victim_temperature,
            phase_points=[],
            pulse_length_s=pulse.length_s,
            ambient_temperature_k=config.ambient_temperature_k,
        )

    # ------------------------------------------------------------------

    def _pattern_from_config(self, config: AttackConfig) -> AttackPattern:
        geometry = self.crossbar.geometry
        if config.pattern is not None:
            from .patterns import standard_patterns

            victim = tuple(config.victim) if config.victim is not None else None
            patterns = standard_patterns(geometry, victim)
            if config.pattern not in patterns:
                raise AttackError(
                    f"pattern {config.pattern!r} does not fit the {geometry.rows}x{geometry.columns} "
                    f"crossbar (available: {sorted(patterns)})"
                )
            return patterns[config.pattern]
        if config.victim is None and len(config.aggressors) == 1:
            aggressor = tuple(config.aggressors[0])
            victim_column = aggressor[1] + 1 if aggressor[1] + 1 < geometry.columns else aggressor[1] - 1
            victim = (aggressor[0], victim_column)
            return AttackPattern(name="single", victim=victim, aggressors=(aggressor,))
        if config.victim is None:
            raise AttackError("multi-aggressor AttackConfig needs an explicit victim")
        return AttackPattern(
            name="custom",
            victim=tuple(config.victim),
            aggressors=tuple(tuple(cell) for cell in config.aggressors),
        )


def hammer_once(
    pulse_length_s: float = 50e-9,
    electrode_spacing_m: float = 50e-9,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    amplitude_v: float = DEFAULT_SET_VOLTAGE_V,
    max_pulses: int = 10_000_000,
    bias_scheme: str = "v_half",
) -> AttackResult:
    """One-call convenience wrapper: run the paper's default attack.

    Builds the paper's 5x5 crossbar with the requested electrode spacing and
    ambient temperature, hammers the centre cell and reports how many pulses
    the nearest same-row neighbour needs to flip.
    """
    geometry = CrossbarGeometry(electrode_spacing_m=electrode_spacing_m)
    crossbar = CrossbarArray(geometry=geometry, ambient_temperature_k=ambient_temperature_k)
    attack = NeuroHammer(crossbar)
    pattern = single_aggressor(geometry)
    config = AttackConfig(
        aggressors=[pattern.aggressors[0]],
        victim=pattern.victim,
        pulse=PulseConfig(amplitude_v=amplitude_v, length_s=pulse_length_s),
        ambient_temperature_k=ambient_temperature_k,
        max_pulses=max_pulses,
        bias_scheme=bias_scheme,
    )
    return attack.run(pattern=pattern, config=config)

"""The NeuroHammer attack: patterns, campaign engines, analysis and scenarios."""

from .analysis import (
    PhaseNarrative,
    half_select_disturbance_time,
    minimum_alpha_to_flip,
    narrate_attack,
    switching_rate,
    thermal_acceleration_factor,
)
from .neurohammer import AttackResult, NeuroHammer, PhaseOperatingPoint, hammer_once
from .patterns import (
    AttackPattern,
    HammerPhase,
    double_sided_column,
    double_sided_row,
    quad_surround,
    row_sweep,
    single_aggressor,
    standard_patterns,
)
from .reliability import WorstCaseCornerScenario, YieldScenario
from .rowhammer import (
    AttackComparison,
    DramCellParameters,
    RowHammerModel,
    RowHammerResult,
    compare_attacks,
)
from .scenarios import (
    DenialOfServiceScenario,
    PrivilegeEscalationScenario,
    ScenarioResult,
    ScenarioStep,
)

__all__ = [
    "NeuroHammer",
    "AttackResult",
    "PhaseOperatingPoint",
    "hammer_once",
    "AttackPattern",
    "HammerPhase",
    "single_aggressor",
    "double_sided_row",
    "double_sided_column",
    "quad_surround",
    "row_sweep",
    "standard_patterns",
    "PhaseNarrative",
    "narrate_attack",
    "switching_rate",
    "thermal_acceleration_factor",
    "half_select_disturbance_time",
    "minimum_alpha_to_flip",
    "RowHammerModel",
    "RowHammerResult",
    "DramCellParameters",
    "AttackComparison",
    "compare_attacks",
    "PrivilegeEscalationScenario",
    "DenialOfServiceScenario",
    "ScenarioResult",
    "ScenarioStep",
    "YieldScenario",
    "WorstCaseCornerScenario",
]

"""Physical constants used throughout the NeuroHammer reproduction.

All values are in SI units.  The constants are deliberately spelled out as
module-level floats (rather than pulled from ``scipy.constants``) so the
simulation is hermetic and every number that enters the physics is visible in
one place.
"""

from __future__ import annotations

#: Boltzmann constant [J/K].
BOLTZMANN_J_PER_K: float = 1.380649e-23

#: Boltzmann constant [eV/K].
BOLTZMANN_EV_PER_K: float = 8.617333262e-5

#: Elementary charge [C].
ELEMENTARY_CHARGE_C: float = 1.602176634e-19

#: Richardson constant for thermionic emission [A / (m^2 K^2)].
RICHARDSON_A_PER_M2K2: float = 1.20173e6

#: Lorenz number of the Wiedemann-Franz law [W Ohm / K^2].
LORENZ_NUMBER_W_OHM_PER_K2: float = 2.44e-8

#: Vacuum permittivity [F/m].
VACUUM_PERMITTIVITY_F_PER_M: float = 8.8541878128e-12

#: Standard ambient temperature used by the paper's experiments [K].
DEFAULT_AMBIENT_TEMPERATURE_K: float = 300.0

#: Default SET amplitude used by every experiment in the paper [V].
DEFAULT_SET_VOLTAGE_V: float = 1.05

#: Zero Celsius in Kelvin, used when converting figure axes given in Celsius.
ZERO_CELSIUS_K: float = 273.15

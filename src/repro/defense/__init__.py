"""Countermeasures against NeuroHammer (the paper's announced future work)."""

from .detection import (
    HammerCounterDetector,
    ProbabilisticRefresh,
    RefreshRequest,
    neighbour_cells,
)
from .evaluation import (
    DefenseEvaluation,
    DefenseOutcome,
    VariationDefenseOutcome,
    VariationDefenseReport,
    evaluate_defenses,
    evaluate_defenses_under_variation,
)
from .refresh import (
    RefreshOutcome,
    RefreshPolicy,
    minimum_refresh_interval,
    pulses_survivable_with_refresh,
    refresh_cell,
)
from .thermal_guard import ThermalGuard, ThermalGuardPolicy, WriteDecision

__all__ = [
    "HammerCounterDetector",
    "ProbabilisticRefresh",
    "RefreshRequest",
    "neighbour_cells",
    "RefreshPolicy",
    "RefreshOutcome",
    "refresh_cell",
    "pulses_survivable_with_refresh",
    "minimum_refresh_interval",
    "ThermalGuard",
    "ThermalGuardPolicy",
    "WriteDecision",
    "DefenseEvaluation",
    "DefenseOutcome",
    "VariationDefenseOutcome",
    "VariationDefenseReport",
    "evaluate_defenses",
    "evaluate_defenses_under_variation",
]

"""Countermeasure evaluation harness.

Quantifies how each defence changes the attack's feasibility, using the same
physics stack as the attack itself:

* V/3 biasing: reduces the half-select stress voltage (ablation ABL3);
* victim refresh: bounds the pulses the drift can accumulate;
* thermal guard: bounds the hammer duty cycle and therefore the crosstalk;
* ECC: bounds the damage a single flip can do at the system level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import AttackConfig, CrossbarGeometry, PulseConfig
from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K
from ..circuit.crossbar import CrossbarArray
from ..attack.neurohammer import AttackResult, NeuroHammer
from ..attack.patterns import single_aggressor
from ..errors import ConfigurationError
from ..thermal.coupling import AnalyticCouplingModel
from .refresh import minimum_refresh_interval, pulses_survivable_with_refresh
from .thermal_guard import ThermalGuard, ThermalGuardPolicy


@dataclass
class DefenseOutcome:
    """Effect of one defence on the reference attack."""

    name: str
    attack_defeated: bool
    #: Pulses the attack needs with the defence active (None if it never flips
    #: within the evaluated budget).
    pulses_with_defense: Optional[int]
    #: Pulses the undefended attack needs.
    pulses_without_defense: int
    #: Relative cost of the defence (qualitative figure of merit, e.g. extra
    #: refresh writes per hammer pulse or throughput reduction factor).
    overhead: float
    notes: str = ""

    @property
    def slowdown_factor(self) -> Optional[float]:
        """How much longer the attack takes with the defence (None = defeated)."""
        if self.pulses_with_defense is None:
            return None
        return self.pulses_with_defense / max(self.pulses_without_defense, 1)


@dataclass
class DefenseEvaluation:
    """Aggregated evaluation of all defences for one attack configuration."""

    baseline: AttackResult
    outcomes: List[DefenseOutcome] = field(default_factory=list)

    def outcome(self, name: str) -> DefenseOutcome:
        """Look up one defence by name."""
        for entry in self.outcomes:
            if entry.name == name:
                return entry
        raise ConfigurationError(f"no defence named {name!r} in this evaluation")


def _run_attack(
    geometry: CrossbarGeometry,
    pulse: PulseConfig,
    ambient_temperature_k: float,
    bias_scheme: str,
    max_pulses: int,
) -> AttackResult:
    crossbar = CrossbarArray(geometry=geometry, ambient_temperature_k=ambient_temperature_k)
    attack = NeuroHammer(crossbar)
    pattern = single_aggressor(geometry)
    config = AttackConfig(
        aggressors=[pattern.aggressors[0]],
        victim=pattern.victim,
        pulse=pulse,
        ambient_temperature_k=ambient_temperature_k,
        bias_scheme=bias_scheme,
        max_pulses=max_pulses,
    )
    return attack.run(pattern=pattern, config=config)


def evaluate_defenses(
    geometry: CrossbarGeometry = None,
    pulse: PulseConfig = None,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    refresh_interval_pulses: int = 1000,
    thermal_policy: ThermalGuardPolicy = None,
    max_pulses: int = 2_000_000,
) -> DefenseEvaluation:
    """Evaluate the countermeasure suite against the paper's default attack."""
    geometry = geometry if geometry is not None else CrossbarGeometry()
    pulse = pulse if pulse is not None else PulseConfig(length_s=50e-9)

    baseline = _run_attack(geometry, pulse, ambient_temperature_k, "v_half", max_pulses)
    evaluation = DefenseEvaluation(baseline=baseline)
    if not baseline.flipped:
        # Nothing to defend against at this operating point.
        return evaluation

    # --- V/3 biasing ---------------------------------------------------------
    v_third = _run_attack(geometry, pulse, ambient_temperature_k, "v_third", max_pulses)
    evaluation.outcomes.append(
        DefenseOutcome(
            name="v_third_bias",
            attack_defeated=not v_third.flipped,
            pulses_with_defense=v_third.pulses if v_third.flipped else None,
            pulses_without_defense=baseline.pulses,
            overhead=0.5,  # roughly doubles unselected-line driver power
            notes="half-select stress reduced from V/2 to V/3",
        )
    )

    # --- victim refresh --------------------------------------------------------
    defeated = pulses_survivable_with_refresh(baseline.pulses, refresh_interval_pulses)
    evaluation.outcomes.append(
        DefenseOutcome(
            name="victim_refresh",
            attack_defeated=defeated,
            pulses_with_defense=None if defeated else baseline.pulses,
            pulses_without_defense=baseline.pulses,
            overhead=4.0 / max(refresh_interval_pulses, 1),  # 4 neighbour rewrites per interval
            notes=(
                f"refresh interval {refresh_interval_pulses} pulses; "
                f"largest safe interval is {minimum_refresh_interval(baseline.pulses)} pulses"
            ),
        )
    )

    # --- thermal guard -----------------------------------------------------------
    policy = thermal_policy if thermal_policy is not None else ThermalGuardPolicy()
    guard = ThermalGuard(
        geometry,
        AnalyticCouplingModel(geometry),
        policy=policy,
        aggressor_rise_k=max(
            (point.aggressor_temperature_k - ambient_temperature_k for point in baseline.phase_points),
            default=650.0,
        ),
    )
    duty_limit = guard.maximum_sustained_duty_cycle(baseline.aggressors[0])
    # The attack needs the full crosstalk temperature, which scales with the
    # duty cycle; throttling to duty_limit scales the victim's acceleration
    # down dramatically — evaluate by re-running with the throttled crosstalk
    # expressed as an increased ambient gap (conservative first-order model:
    # if the guard limits the duty cycle below the attack's own duty cycle,
    # the sustained crosstalk is reduced proportionally).
    attack_duty = pulse.duty_cycle
    throttled = duty_limit < attack_duty
    # Throttling the duty cycle scales the sustained crosstalk temperature
    # down proportionally; because the kinetics are exponential in that
    # temperature, halving the duty cycle already pushes the pulse count out
    # by orders of magnitude, so any substantial throttling defeats the
    # attack in practice.
    evaluation.outcomes.append(
        DefenseOutcome(
            name="thermal_guard",
            attack_defeated=throttled and duty_limit <= 0.5 * attack_duty,
            pulses_with_defense=None if throttled else baseline.pulses,
            pulses_without_defense=baseline.pulses,
            overhead=1.0 - duty_limit / attack_duty if throttled else 0.0,
            notes=f"guard limits sustained hammer duty cycle to {duty_limit:.3f} (attack uses {attack_duty})",
        )
    )

    # --- ECC ------------------------------------------------------------------------
    evaluation.outcomes.append(
        DefenseOutcome(
            name="secded_ecc",
            attack_defeated=False,
            pulses_with_defense=baseline.pulses * 2,  # needs two flips in one word
            pulses_without_defense=baseline.pulses,
            overhead=8.0 / 64.0,
            notes="SEC-DED corrects a single flip per word; two flips in the same word still succeed",
        )
    )
    return evaluation

"""Countermeasure evaluation harness.

Quantifies how each defence changes the attack's feasibility, using the same
physics stack as the attack itself:

* V/3 biasing: reduces the half-select stress voltage (ablation ABL3);
* victim refresh: bounds the pulses the drift can accumulate;
* thermal guard: bounds the hammer duty cycle and therefore the crosstalk;
* ECC: bounds the damage a single flip can do at the system level.

:func:`evaluate_defenses` answers the question for the *nominal* device.
:func:`evaluate_defenses_under_variation` answers it for a sampled
population: a guard tuned on the nominal cell may still lose to weak-corner
devices, so each defence is scored by the residual flip probability across
device-to-device variation — with a confidence interval, on an adaptive
sample budget (the Monte-Carlo engine stops each population as soon as its
interval is tight, so comparing four defences does not cost four fixed-n
campaigns).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from ..config import AttackConfig, CrossbarGeometry, PulseConfig, SimulationConfig
from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K
from ..circuit.crossbar import CrossbarArray
from ..attack.neurohammer import AttackResult, NeuroHammer
from ..attack.patterns import single_aggressor
from ..errors import ConfigurationError
from ..thermal.coupling import AnalyticCouplingModel
from .refresh import minimum_refresh_interval, pulses_survivable_with_refresh
from .thermal_guard import ThermalGuard, ThermalGuardPolicy


@dataclass
class DefenseOutcome:
    """Effect of one defence on the reference attack."""

    name: str
    attack_defeated: bool
    #: Pulses the attack needs with the defence active (None if it never flips
    #: within the evaluated budget).
    pulses_with_defense: Optional[int]
    #: Pulses the undefended attack needs.
    pulses_without_defense: int
    #: Relative cost of the defence (qualitative figure of merit, e.g. extra
    #: refresh writes per hammer pulse or throughput reduction factor).
    overhead: float
    notes: str = ""

    @property
    def slowdown_factor(self) -> Optional[float]:
        """How much longer the attack takes with the defence (None = defeated)."""
        if self.pulses_with_defense is None:
            return None
        return self.pulses_with_defense / max(self.pulses_without_defense, 1)


@dataclass
class DefenseEvaluation:
    """Aggregated evaluation of all defences for one attack configuration."""

    baseline: AttackResult
    outcomes: List[DefenseOutcome] = field(default_factory=list)

    def outcome(self, name: str) -> DefenseOutcome:
        """Look up one defence by name."""
        for entry in self.outcomes:
            if entry.name == name:
                return entry
        raise ConfigurationError(f"no defence named {name!r} in this evaluation")


def _run_attack(
    geometry: CrossbarGeometry,
    pulse: PulseConfig,
    ambient_temperature_k: float,
    bias_scheme: str,
    max_pulses: int,
) -> AttackResult:
    crossbar = CrossbarArray(geometry=geometry, ambient_temperature_k=ambient_temperature_k)
    attack = NeuroHammer(crossbar)
    pattern = single_aggressor(geometry)
    config = AttackConfig(
        aggressors=[pattern.aggressors[0]],
        victim=pattern.victim,
        pulse=pulse,
        ambient_temperature_k=ambient_temperature_k,
        bias_scheme=bias_scheme,
        max_pulses=max_pulses,
    )
    return attack.run(pattern=pattern, config=config)


def evaluate_defenses(
    geometry: CrossbarGeometry = None,
    pulse: PulseConfig = None,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    refresh_interval_pulses: int = 1000,
    thermal_policy: ThermalGuardPolicy = None,
    max_pulses: int = 2_000_000,
) -> DefenseEvaluation:
    """Evaluate the countermeasure suite against the paper's default attack."""
    geometry = geometry if geometry is not None else CrossbarGeometry()
    pulse = pulse if pulse is not None else PulseConfig(length_s=50e-9)

    baseline = _run_attack(geometry, pulse, ambient_temperature_k, "v_half", max_pulses)
    evaluation = DefenseEvaluation(baseline=baseline)
    if not baseline.flipped:
        # Nothing to defend against at this operating point.
        return evaluation

    # --- V/3 biasing ---------------------------------------------------------
    v_third = _run_attack(geometry, pulse, ambient_temperature_k, "v_third", max_pulses)
    evaluation.outcomes.append(
        DefenseOutcome(
            name="v_third_bias",
            attack_defeated=not v_third.flipped,
            pulses_with_defense=v_third.pulses if v_third.flipped else None,
            pulses_without_defense=baseline.pulses,
            overhead=0.5,  # roughly doubles unselected-line driver power
            notes="half-select stress reduced from V/2 to V/3",
        )
    )

    # --- victim refresh --------------------------------------------------------
    defeated = pulses_survivable_with_refresh(baseline.pulses, refresh_interval_pulses)
    evaluation.outcomes.append(
        DefenseOutcome(
            name="victim_refresh",
            attack_defeated=defeated,
            pulses_with_defense=None if defeated else baseline.pulses,
            pulses_without_defense=baseline.pulses,
            overhead=4.0 / max(refresh_interval_pulses, 1),  # 4 neighbour rewrites per interval
            notes=(
                f"refresh interval {refresh_interval_pulses} pulses; "
                f"largest safe interval is {minimum_refresh_interval(baseline.pulses)} pulses"
            ),
        )
    )

    # --- thermal guard -----------------------------------------------------------
    policy = thermal_policy if thermal_policy is not None else ThermalGuardPolicy()
    guard = ThermalGuard(
        geometry,
        AnalyticCouplingModel(geometry),
        policy=policy,
        aggressor_rise_k=max(
            (point.aggressor_temperature_k - ambient_temperature_k for point in baseline.phase_points),
            default=650.0,
        ),
    )
    duty_limit = guard.maximum_sustained_duty_cycle(baseline.aggressors[0])
    # The attack needs the full crosstalk temperature, which scales with the
    # duty cycle; throttling to duty_limit scales the victim's acceleration
    # down dramatically — evaluate by re-running with the throttled crosstalk
    # expressed as an increased ambient gap (conservative first-order model:
    # if the guard limits the duty cycle below the attack's own duty cycle,
    # the sustained crosstalk is reduced proportionally).
    attack_duty = pulse.duty_cycle
    throttled = duty_limit < attack_duty
    # Throttling the duty cycle scales the sustained crosstalk temperature
    # down proportionally; because the kinetics are exponential in that
    # temperature, halving the duty cycle already pushes the pulse count out
    # by orders of magnitude, so any substantial throttling defeats the
    # attack in practice.
    evaluation.outcomes.append(
        DefenseOutcome(
            name="thermal_guard",
            attack_defeated=throttled and duty_limit <= 0.5 * attack_duty,
            pulses_with_defense=None if throttled else baseline.pulses,
            pulses_without_defense=baseline.pulses,
            overhead=1.0 - duty_limit / attack_duty if throttled else 0.0,
            notes=f"guard limits sustained hammer duty cycle to {duty_limit:.3f} (attack uses {attack_duty})",
        )
    )

    # --- ECC ------------------------------------------------------------------------
    evaluation.outcomes.append(
        DefenseOutcome(
            name="secded_ecc",
            attack_defeated=False,
            pulses_with_defense=baseline.pulses * 2,  # needs two flips in one word
            pulses_without_defense=baseline.pulses,
            overhead=8.0 / 64.0,
            notes="SEC-DED corrects a single flip per word; two flips in the same word still succeed",
        )
    )
    return evaluation


# ----------------------------------------------------------------------
# population-level evaluation (defense under variation)
# ----------------------------------------------------------------------


@dataclass
class VariationDefenseOutcome:
    """One defence's residual exposure across device-to-device variation."""

    name: str
    #: Flip probability of the defended population within the pulse budget.
    flip_probability: float
    ci_low: float
    ci_high: float
    #: Samples the adaptive run spent to pin the interval down.
    samples_used: int
    #: Flip probability of the undefended baseline population.
    baseline_flip_probability: float
    notes: str = ""

    @property
    def attack_defeated(self) -> bool:
        """True when the defended population's interval excludes any flipping
        beyond 1% of cells — the population analogue of a defeated attack."""
        return self.ci_high <= 0.01

    @property
    def exposure_reduction(self) -> float:
        """Fraction of the baseline flip probability the defence removes."""
        if self.baseline_flip_probability <= 0.0:
            return 0.0
        return 1.0 - self.flip_probability / self.baseline_flip_probability


@dataclass
class VariationDefenseReport:
    """Population-level evaluation of the countermeasure suite."""

    #: Undefended population statistics (name "baseline" outcome included
    #: in :attr:`outcomes` for uniform tabulation).
    outcomes: List[VariationDefenseOutcome] = field(default_factory=list)
    #: Pulse budget the exposure is evaluated against.
    pulse_budget: int = 0
    #: Total Monte-Carlo samples spent across all defences.
    total_samples: int = 0
    target_half_width: float = 0.02

    def outcome(self, name: str) -> VariationDefenseOutcome:
        for entry in self.outcomes:
            if entry.name == name:
                return entry
        raise ConfigurationError(f"no defence named {name!r} in this evaluation")

    def to_experiment_result(self):
        """The report as a standard experiment table."""
        from ..experiments.base import ExperimentResult

        result = ExperimentResult(
            name="defense_under_variation",
            description=(
                "Residual flip probability per defence across device-to-device "
                f"variation (adaptive sampling, target CI half-width {self.target_half_width:g})"
            ),
            columns=[
                "defense",
                "flip_probability",
                "ci_low",
                "ci_high",
                "exposure_reduction",
                "attack_defeated",
                "samples_used",
                "notes",
            ],
            metadata={
                "pulse_budget": self.pulse_budget,
                "total_samples": self.total_samples,
                "target_half_width": self.target_half_width,
            },
        )
        for entry in self.outcomes:
            result.add_row(
                defense=entry.name,
                flip_probability=entry.flip_probability,
                ci_low=entry.ci_low,
                ci_high=entry.ci_high,
                exposure_reduction=entry.exposure_reduction,
                attack_defeated=entry.attack_defeated,
                samples_used=entry.samples_used,
                notes=entry.notes,
            )
        return result


def _population_exposure(result, pulse_budget: int):
    """(flip-within-budget probability estimate, interval) of one population.

    "Flipped within the budget" is the defended failure event, so the
    estimator is rebuilt over that event instead of the raw flip flag (the
    result's :meth:`event_estimator` handles importance weights).
    """
    estimator = result.event_estimator(result.flipped & (result.pulses <= pulse_budget))
    low, high = estimator.interval()
    return float(estimator.estimate), float(low), float(high)


def evaluate_defenses_under_variation(
    distributions: Optional[Sequence[Any]] = None,
    simulation: Optional[SimulationConfig] = None,
    attack: Optional[AttackConfig] = None,
    pulse_budget: int = 100_000,
    refresh_interval_pulses: int = 1000,
    thermal_policy: Optional[ThermalGuardPolicy] = None,
    target_half_width: float = 0.02,
    batch_size: int = 128,
    n_max: int = 8192,
    seed: int = 0,
) -> VariationDefenseReport:
    """Score each countermeasure by residual flip probability under variation.

    Every defence is evaluated as a Monte-Carlo population with an adaptive
    stopping rule (``target_half_width`` on the flip-probability CI), so the
    sample budget flows to the defences whose outcome is actually uncertain.
    The default population is the shipped variability set with recorded
    provenance (:func:`repro.experiments.calibration.default_variability_distributions`).
    """
    from ..experiments.calibration import default_variability_distributions
    from ..montecarlo.adaptive import AdaptiveConfig
    from ..montecarlo.engine import MonteCarloConfig, MonteCarloEngine

    if pulse_budget < 1:
        raise ConfigurationError("pulse_budget must be at least 1")
    if distributions is None:
        distributions = default_variability_distributions()
    simulation = simulation if simulation is not None else SimulationConfig()
    attack = attack if attack is not None else AttackConfig(
        pulse=PulseConfig(length_s=50e-9), max_pulses=max(pulse_budget, 100_000)
    )
    adaptive = AdaptiveConfig(
        batch_size=batch_size, n_max=n_max, target_half_width=target_half_width
    )

    def engine_for(attack_config: AttackConfig) -> MonteCarloEngine:
        config = MonteCarloConfig(
            seed=seed, distributions=list(distributions), adaptive=adaptive
        )
        return MonteCarloEngine(config, simulation=simulation, attack=attack_config)

    report = VariationDefenseReport(
        pulse_budget=pulse_budget, target_half_width=target_half_width
    )

    # --- undefended baseline (the attack's own bias scheme) -----------------
    baseline_engine = engine_for(attack)
    baseline_result = baseline_engine.run()
    base_p, base_low, base_high = _population_exposure(baseline_result, pulse_budget)
    report.total_samples += baseline_result.n_samples
    report.outcomes.append(
        VariationDefenseOutcome(
            name="baseline",
            flip_probability=base_p,
            ci_low=base_low,
            ci_high=base_high,
            samples_used=baseline_result.n_samples,
            baseline_flip_probability=base_p,
            notes=f"undefended {attack.bias_scheme} attack, budget {pulse_budget} pulses",
        )
    )

    # --- V/3 biasing ---------------------------------------------------------
    v_third_result = engine_for(replace(attack, bias_scheme="v_third")).run()
    p, low, high = _population_exposure(v_third_result, pulse_budget)
    report.total_samples += v_third_result.n_samples
    report.outcomes.append(
        VariationDefenseOutcome(
            name="v_third_bias",
            flip_probability=p,
            ci_low=low,
            ci_high=high,
            samples_used=v_third_result.n_samples,
            baseline_flip_probability=base_p,
            notes="half-select stress reduced from V/2 to V/3 across the population",
        )
    )

    # --- victim refresh ------------------------------------------------------
    # Refresh resets the drift every `refresh_interval_pulses`; only cells
    # whose pulses-to-flip fit inside one interval still flip.  That is a
    # reweighting of the baseline population, not a new physics run.
    refresh_budget = min(pulse_budget, refresh_interval_pulses)
    p, low, high = _population_exposure(baseline_result, refresh_budget)
    report.outcomes.append(
        VariationDefenseOutcome(
            name="victim_refresh",
            flip_probability=p,
            ci_low=low,
            ci_high=high,
            samples_used=0,  # reuses the baseline population
            baseline_flip_probability=base_p,
            notes=(
                f"refresh every {refresh_interval_pulses} pulses; only cells flipping "
                "within one interval remain exposed"
            ),
        )
    )

    # --- thermal guard -------------------------------------------------------
    policy = thermal_policy if thermal_policy is not None else ThermalGuardPolicy()
    conditions = baseline_engine.nominal_conditions()
    guard = ThermalGuard(
        simulation.geometry,
        AnalyticCouplingModel(simulation.geometry),
        policy=policy,
        aggressor_rise_k=max(conditions.aggressor_rise_k, 1.0),
    )
    pattern = single_aggressor(simulation.geometry)
    duty_limit = guard.maximum_sustained_duty_cycle(pattern.aggressors[0])
    throttle = min(1.0, duty_limit / attack.pulse.duty_cycle)
    guard_engine = engine_for(attack)
    # Sustained crosstalk scales with the duty cycle the guard allows; the
    # engine anchors crosstalk through the nominal coupling ratio, so the
    # throttled attack is the same population under explicitly scaled
    # operating conditions.
    base_conditions = guard_engine.nominal_conditions()
    guard_engine.set_nominal_conditions(
        replace(
            base_conditions,
            coupling_ratio=base_conditions.coupling_ratio * throttle,
            crosstalk_temperature_k=base_conditions.crosstalk_temperature_k * throttle,
        )
    )
    guard_result = guard_engine.run()
    p, low, high = _population_exposure(guard_result, pulse_budget)
    report.total_samples += guard_result.n_samples
    report.outcomes.append(
        VariationDefenseOutcome(
            name="thermal_guard",
            flip_probability=p,
            ci_low=low,
            ci_high=high,
            samples_used=guard_result.n_samples,
            baseline_flip_probability=base_p,
            notes=(
                f"guard throttles sustained duty cycle to {duty_limit:.3f} "
                f"(attack uses {attack.pulse.duty_cycle:g}); crosstalk scaled by {throttle:.3f}"
            ),
        )
    )

    return report

"""Thermal-aware write-rate limiting.

NeuroHammer works because the aggressor's filament stays hot while it is
hammered at a high duty cycle.  A controller that tracks a thermal budget per
line and throttles writes once the estimated local temperature rise exceeds a
limit removes exactly that ingredient.  The guard implements a leaky-bucket
estimate of each cell's average dissipation and the resulting neighbourhood
temperature rise (using the same alpha values the attack exploits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..config import CrossbarGeometry
from ..errors import ConfigurationError
from ..thermal.coupling import CouplingModel

Cell = Tuple[int, int]


@dataclass
class ThermalGuardPolicy:
    """Thermal throttling policy of the memory controller."""

    #: Maximum tolerated time-averaged neighbour temperature rise [K].
    max_neighbour_rise_k: float = 10.0
    #: Thermal relaxation time constant of the duty-cycle averaging [s].
    averaging_window_s: float = 10e-6
    #: Minimum enforced gap between writes to a throttled line [s].
    throttle_gap_s: float = 1e-6

    def __post_init__(self) -> None:
        if self.max_neighbour_rise_k <= 0:
            raise ConfigurationError("max_neighbour_rise_k must be positive")
        if self.averaging_window_s <= 0 or self.throttle_gap_s <= 0:
            raise ConfigurationError("time constants must be positive")


@dataclass
class WriteDecision:
    """Outcome of asking the guard whether a write may proceed now."""

    allowed: bool
    #: Earliest time at which the write may proceed [s].
    earliest_time_s: float
    #: Estimated neighbour temperature rise if the write went ahead [K].
    predicted_neighbour_rise_k: float


class ThermalGuard:
    """Leaky-bucket thermal budget tracker per crossbar cell."""

    def __init__(
        self,
        geometry: CrossbarGeometry,
        coupling: CouplingModel,
        policy: ThermalGuardPolicy = None,
        aggressor_rise_k: float = 650.0,
    ):
        self.geometry = geometry
        self.coupling = coupling
        self.policy = policy if policy is not None else ThermalGuardPolicy()
        #: Steady-state rise of a continuously hammered aggressor [K]; the
        #: duty-cycle average scales this down.
        self.aggressor_rise_k = aggressor_rise_k
        #: Per-cell accumulated "hot time" within the averaging window [s].
        self._hot_time_s: Dict[Cell, float] = {}
        self._last_update_s: Dict[Cell, float] = {}
        self.throttled_writes = 0
        self.allowed_writes = 0

    # ------------------------------------------------------------------

    def _decay(self, cell: Cell, now_s: float) -> float:
        """Decay the cell's accumulated hot time to the current instant.

        The accumulator leaks exponentially with the averaging window as its
        time constant, so in steady state it settles at
        ``duty_cycle * averaging_window`` — i.e. it measures the sustained
        hammer duty cycle of the cell.
        """
        import math

        hot = self._hot_time_s.get(cell, 0.0)
        last = self._last_update_s.get(cell, now_s)
        elapsed = max(now_s - last, 0.0)
        if elapsed > 0:
            hot *= math.exp(-elapsed / self.policy.averaging_window_s)
        self._hot_time_s[cell] = hot
        self._last_update_s[cell] = now_s
        return hot

    def _duty_cycle(self, hot_time_s: float) -> float:
        return min(1.0, hot_time_s / self.policy.averaging_window_s)

    def neighbour_rise(self, cell: Cell, duty_cycle: float) -> float:
        """Worst-case neighbour temperature rise for a given duty cycle [K]."""
        worst_alpha = 0.0
        row, column = cell
        for dr, dc in ((0, -1), (0, 1), (-1, 0), (1, 0)):
            neighbour = (row + dr, column + dc)
            if 0 <= neighbour[0] < self.geometry.rows and 0 <= neighbour[1] < self.geometry.columns:
                worst_alpha = max(worst_alpha, self.coupling.alpha_between(cell, neighbour))
        return worst_alpha * self.aggressor_rise_k * duty_cycle

    # ------------------------------------------------------------------

    def request_write(self, cell: Cell, time_s: float, pulse_length_s: float) -> WriteDecision:
        """Ask whether a write pulse to ``cell`` may start at ``time_s``."""
        self.geometry.validate_cell(*cell)
        cell = tuple(cell)
        hot = self._decay(cell, time_s)
        predicted_hot = hot + pulse_length_s
        rise = self.neighbour_rise(cell, self._duty_cycle(predicted_hot))
        if rise <= self.policy.max_neighbour_rise_k:
            self._hot_time_s[cell] = predicted_hot
            self.allowed_writes += 1
            return WriteDecision(allowed=True, earliest_time_s=time_s, predicted_neighbour_rise_k=rise)
        self.throttled_writes += 1
        return WriteDecision(
            allowed=False,
            earliest_time_s=time_s + self.policy.throttle_gap_s,
            predicted_neighbour_rise_k=rise,
        )

    def maximum_sustained_duty_cycle(self, cell: Cell) -> float:
        """Largest hammer duty cycle the guard will sustain for a cell."""
        full_rise = self.neighbour_rise(tuple(cell), 1.0)
        if full_rise <= 0:
            return 1.0
        return min(1.0, self.policy.max_neighbour_rise_k / full_rise)

"""Victim refresh / scrubbing: undoing partial disturbance.

A NeuroHammer victim does not flip instantly — its state drifts over
thousands of pulses.  A refresh (verify the stored bit and rewrite it)
resets that drift, so the attack only succeeds if it can accumulate the full
drift *between two refreshes*.  This module models that interaction on top of
the device physics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..devices.base import DeviceState, MemristorModel
from ..errors import ConfigurationError

Cell = Tuple[int, int]


@dataclass
class RefreshPolicy:
    """How aggressively victims are scrubbed."""

    #: Refresh every victim neighbour after this many observed hammer pulses.
    interval_pulses: int = 1000
    #: Drift threshold above which a refresh actually rewrites the cell
    #: (below it the verify passes and nothing is done).
    rewrite_threshold_x: float = 0.05

    def __post_init__(self) -> None:
        if self.interval_pulses < 1:
            raise ConfigurationError("interval_pulses must be at least 1")
        if not 0.0 < self.rewrite_threshold_x < 1.0:
            raise ConfigurationError("rewrite_threshold_x must be in (0, 1)")


@dataclass
class RefreshOutcome:
    """Result of refreshing one victim cell."""

    cell: Cell
    drift_before_x: float
    rewritten: bool


def refresh_cell(
    model: MemristorModel,
    state: DeviceState,
    stored_bit: int,
    policy: RefreshPolicy,
    ambient_temperature_k: float,
    lrs_is_one: bool = True,
) -> RefreshOutcome:
    """Verify a cell against its stored bit and rewrite it if it drifted.

    The rewrite is modelled as ideal (the controller's write-verify loop runs
    to completion), which is the best case for the defender and therefore the
    conservative bound when evaluating the *attack*.
    """
    target = model.state_from_bit(stored_bit, ambient_temperature_k, lrs_is_one=lrs_is_one)
    drift = abs(state.x - target.x)
    rewritten = drift > policy.rewrite_threshold_x
    if rewritten:
        state.x = target.x
    state.filament_temperature_k = ambient_temperature_k
    return RefreshOutcome(cell=(-1, -1), drift_before_x=drift, rewritten=rewritten)


def pulses_survivable_with_refresh(
    pulses_to_flip: int,
    refresh_interval_pulses: int,
) -> bool:
    """True if the refresh interval defeats the attack.

    The attack needs ``pulses_to_flip`` consecutive undisturbed pulses; if the
    victim is scrubbed more often than that the drift never accumulates.
    """
    if pulses_to_flip < 1 or refresh_interval_pulses < 1:
        raise ConfigurationError("pulse counts must be positive")
    return refresh_interval_pulses < pulses_to_flip


def minimum_refresh_interval(pulses_to_flip: int, safety_factor: float = 2.0) -> int:
    """Largest refresh interval (in hammer pulses) that still stops the attack."""
    if pulses_to_flip < 1:
        raise ConfigurationError("pulses_to_flip must be positive")
    if safety_factor < 1.0:
        raise ConfigurationError("safety_factor must be >= 1")
    return max(1, int(pulses_to_flip / safety_factor))

"""Hammering detection: access counters and probabilistic neighbour refresh.

The paper's future work announces the exploration of countermeasures.  The
two standard RowHammer defence families transfer directly to the crossbar
setting and are modelled here:

* :class:`HammerCounterDetector` — per-line write counters within a time
  window (the TRR / "counter table" family): once a line's write count
  exceeds a threshold inside the window, its neighbours are scheduled for a
  verify/refresh.
* :class:`ProbabilisticRefresh` — the PARA family: every write triggers, with
  a small probability, a refresh of the written cell's neighbours, requiring
  no counters at all.

Both produce *refresh requests*; what a refresh does to the physics is the
job of :mod:`repro.defense.refresh`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..config import CrossbarGeometry
from ..errors import ConfigurationError

Cell = Tuple[int, int]


@dataclass
class RefreshRequest:
    """A request to verify/refresh the neighbourhood of a hammered cell."""

    trigger_cell: Cell
    victim_cells: Tuple[Cell, ...]
    #: Write count (or probability draw) that triggered the request.
    reason: str
    issued_at_write: int = 0


def neighbour_cells(geometry: CrossbarGeometry, cell: Cell) -> Tuple[Cell, ...]:
    """Same-line nearest neighbours of a cell — the NeuroHammer victims."""
    geometry.validate_cell(*cell)
    row, column = cell
    candidates = [(row, column - 1), (row, column + 1), (row - 1, column), (row + 1, column)]
    return tuple(
        (r, c) for r, c in candidates if 0 <= r < geometry.rows and 0 <= c < geometry.columns
    )


class HammerCounterDetector:
    """Sliding-window per-cell write counters with a hammer threshold."""

    def __init__(
        self,
        geometry: CrossbarGeometry,
        threshold: int = 1000,
        window_writes: int = 100_000,
    ):
        if threshold < 1:
            raise ConfigurationError("threshold must be at least 1")
        if window_writes < threshold:
            raise ConfigurationError("window must be at least as long as the threshold")
        self.geometry = geometry
        self.threshold = threshold
        self.window_writes = window_writes
        self._counters: Dict[Cell, int] = {}
        self._total_writes = 0
        self._window_start = 0
        self.requests: List[RefreshRequest] = []

    def observe_write(self, cell: Cell) -> Optional[RefreshRequest]:
        """Record a write/hammer pulse; returns a refresh request if triggered."""
        self.geometry.validate_cell(*cell)
        cell = tuple(cell)
        self._total_writes += 1
        if self._total_writes - self._window_start >= self.window_writes:
            self._counters.clear()
            self._window_start = self._total_writes
        count = self._counters.get(cell, 0) + 1
        self._counters[cell] = count
        if count == self.threshold:
            request = RefreshRequest(
                trigger_cell=cell,
                victim_cells=neighbour_cells(self.geometry, cell),
                reason=f"write count reached {count} within window",
                issued_at_write=self._total_writes,
            )
            self.requests.append(request)
            # Counting continues so sustained hammering keeps re-triggering.
            self._counters[cell] = 0
            return request
        return None

    def writes_observed(self) -> int:
        """Total writes observed so far."""
        return self._total_writes


class ProbabilisticRefresh:
    """PARA-style probabilistic neighbour refresh."""

    def __init__(
        self,
        geometry: CrossbarGeometry,
        probability: float = 0.001,
        seed: Optional[int] = 1234,
    ):
        if not 0.0 < probability <= 1.0:
            raise ConfigurationError("probability must be in (0, 1]")
        self.geometry = geometry
        self.probability = probability
        self._rng = random.Random(seed)
        self._writes = 0
        self.requests: List[RefreshRequest] = []

    def observe_write(self, cell: Cell) -> Optional[RefreshRequest]:
        """Record a write; with probability p request a neighbour refresh."""
        self.geometry.validate_cell(*cell)
        self._writes += 1
        if self._rng.random() >= self.probability:
            return None
        request = RefreshRequest(
            trigger_cell=tuple(cell),
            victim_cells=neighbour_cells(self.geometry, cell),
            reason=f"probabilistic draw (p={self.probability})",
            issued_at_write=self._writes,
        )
        self.requests.append(request)
        return request

    def expected_writes_between_refreshes(self) -> float:
        """Mean number of hammer writes between two refreshes of a victim."""
        return 1.0 / self.probability

"""Campaign engine: declarative sweeps, parallel execution, cached results.

This subsystem generalises the ad-hoc sweep loops of the figure experiments
into reusable machinery:

* :class:`~repro.campaign.spec.CampaignSpec` — declarative grid/zip/random
  sweeps over any :class:`~repro.config.SimulationConfig` /
  :class:`~repro.config.AttackConfig` field,
* :class:`~repro.campaign.runner.CampaignRunner` — serial or
  multiprocessing execution with per-job error capture and timeouts,
* :class:`~repro.campaign.cache.ResultCache` — a content-addressed on-disk
  cache that makes re-runs incremental and interrupted campaigns resumable;
  it doubles as the facade over the concurrent-safe shared result store
  (:mod:`repro.store`) when one lives at the cache root,
* :mod:`~repro.campaign.aggregate` — reduction of job records back into
  :class:`~repro.experiments.base.ExperimentResult` tables and sweep-level
  summary statistics.

Typical use::

    from repro.campaign import CampaignRunner, CampaignSpec, ResultCache

    spec = CampaignSpec(
        name="spacing-study",
        axes=[{"path": "simulation.geometry.electrode_spacing_m",
               "values": [10e-9, 30e-9, 50e-9, 70e-9, 90e-9]}],
    )
    report = CampaignRunner(spec, cache=ResultCache(".repro-cache"), workers=4).run()
    print(report.summary())
"""

from .aggregate import (
    ensure_complete,
    experiment_row_builder,
    generic_row,
    scenario_success_rates,
    summarise,
    to_experiment_result,
)
from .cache import CACHE_BACKENDS, ResultCache
from .runner import (
    CampaignReport,
    CampaignRunner,
    JobRecord,
    attack_result_to_dict,
    execute_attack_point,
    execute_montecarlo_point,
    execute_point,
    run_campaign_job,
)
from .spec import CampaignPoint, CampaignSpec, SweepAxis, point_key

__all__ = [
    "CampaignSpec",
    "SweepAxis",
    "CampaignPoint",
    "point_key",
    "CampaignRunner",
    "CampaignReport",
    "JobRecord",
    "run_campaign_job",
    "execute_point",
    "execute_attack_point",
    "execute_montecarlo_point",
    "attack_result_to_dict",
    "CACHE_BACKENDS",
    "ResultCache",
    "to_experiment_result",
    "ensure_complete",
    "summarise",
    "scenario_success_rates",
    "generic_row",
    "experiment_row_builder",
]

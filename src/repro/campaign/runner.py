"""Campaign execution: serial and multiprocessing fan-out with a result cache.

The unit of work is one :class:`~repro.campaign.spec.CampaignPoint`.  Every
point is executed by the same module-level :func:`run_campaign_job` function
whether the campaign runs serially or through a worker pool, so the two paths
are bit-identical by construction — the pool only changes *where* the function
runs, never *what* it computes.

Error handling happens inside the job function: an exception in one point is
captured into its :class:`JobRecord` instead of tearing down the campaign,
mirroring how hardware RowHammer harnesses keep a long sweep alive when a
single configuration misbehaves.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..attack.neurohammer import AttackResult, NeuroHammer
from ..circuit.crossbar import CrossbarArray
from ..config import AttackConfig, SimulationConfig
from ..errors import CampaignError
from ..obs import Telemetry, get_heartbeat, get_telemetry, telemetry_capture, telemetry_enabled
from ..utils.logging import get_logger
from .cache import ResultCache
from .spec import CampaignPoint, CampaignSpec

#: Payload handed to a (possibly remote) job function.
JobPayload = Tuple[int, str, Dict[str, Any], Dict[str, Any]]

logger = get_logger("campaign.runner")


def _init_worker(telemetry_on: bool) -> None:
    """Pool initializer: arm a worker-local telemetry when the parent's is on.

    The job payload tuple stays untouched (its content feeds the cache keys),
    so the enable flag travels through the pool initializer instead.
    """
    if telemetry_on:
        from ..obs import enable_telemetry

        enable_telemetry()


def attack_result_to_dict(result: AttackResult) -> Dict[str, Any]:
    """Flatten an :class:`AttackResult` into a JSON-serialisable record."""
    return {
        "pattern": result.pattern_name,
        "victim": list(result.victim),
        "aggressors": [list(cell) for cell in result.aggressors],
        "phases": len(result.phase_points),
        "flipped": bool(result.flipped),
        "pulses": int(result.pulses),
        "pulses_per_aggressor": float(result.pulses_per_aggressor),
        "stress_time_s": float(result.stress_time_s),
        "wall_clock_s": float(result.wall_clock_s),
        "victim_final_x": float(result.victim_final_x),
        "victim_temperature_k": float(result.victim_temperature_k),
        "pulse_length_s": float(result.pulse_length_s),
        "ambient_temperature_k": float(result.ambient_temperature_k),
        "hammer_energy_j": float(result.hammer_energy_j),
    }


def execute_attack_point(job: Dict[str, Any]) -> Dict[str, Any]:
    """Run one attack point: the campaign equivalent of ``hammer_once``.

    The crossbar is built from the point's simulation config at the attack's
    ambient temperature, and the fast quasi-static engine runs the attack.
    """
    simulation = SimulationConfig.from_dict(job["simulation"])
    attack = AttackConfig.from_dict(job["attack"])
    crossbar = CrossbarArray(
        geometry=simulation.geometry,
        wires=simulation.wires,
        ambient_temperature_k=attack.ambient_temperature_k,
    )
    outcome = NeuroHammer(crossbar).run(config=attack)
    return attack_result_to_dict(outcome)


def execute_montecarlo_point(job: Dict[str, Any]) -> Dict[str, Any]:
    """Run one Monte-Carlo population point and return its summary record."""
    # Imported lazily: repro.montecarlo builds on the campaign package.
    from ..montecarlo.engine import MonteCarloConfig, MonteCarloEngine

    simulation = SimulationConfig.from_dict(job["simulation"])
    attack = AttackConfig.from_dict(job["attack"])
    montecarlo = MonteCarloConfig.from_dict(job.get("montecarlo", {}))
    result = MonteCarloEngine(montecarlo, simulation=simulation, attack=attack).run()
    record = result.summary()
    # The engine's own wall time survives in the result payload (the runner
    # tracks the job's total under the JobRecord's duration_s), so cached
    # replays can still report the original compute cost.
    record["engine_duration_s"] = record.pop("duration_s", 0.0)
    record["conditions"] = result.conditions.to_dict()
    record["pulse_length_s"] = float(attack.pulse.length_s)
    record["ambient_temperature_k"] = float(attack.ambient_temperature_k)
    return record


def execute_point(job: Dict[str, Any]) -> Dict[str, Any]:
    """Run one materialised campaign point according to its job kind."""
    if job.get("kind", "attack") == "montecarlo":
        return execute_montecarlo_point(job)
    return execute_attack_point(job)


@dataclass
class JobRecord:
    """Outcome of one campaign point: a result, an error, or a timeout."""

    index: int
    key: str
    status: str  # "ok" | "error" | "timeout"
    overrides: Dict[str, Any] = field(default_factory=dict)
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    duration_s: float = 0.0
    cached: bool = False
    #: Telemetry snapshot of the job's own scope (when telemetry is active).
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "index": self.index,
            "key": self.key,
            "status": self.status,
            "overrides": self.overrides,
            "result": self.result,
            "error": self.error,
            "duration_s": self.duration_s,
            "cached": self.cached,
        }
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry
        return payload


def run_campaign_job(payload: JobPayload) -> JobRecord:
    """Execute one job payload, capturing any exception into the record.

    With telemetry active, the job runs under a fresh job-local
    :class:`~repro.obs.Telemetry` whose snapshot rides back on the record —
    uniformly for the serial and pool paths, so per-job span trees cross the
    multiprocessing boundary as plain dicts and the parent merges them.
    """
    if telemetry_enabled():
        with telemetry_capture(Telemetry()) as tel:
            with tel.span("campaign.job", index=payload[0]):
                record = _execute_campaign_job(payload)
            record.telemetry = tel.snapshot()
        return record
    return _execute_campaign_job(payload)


def _execute_campaign_job(payload: JobPayload) -> JobRecord:
    index, key, job, overrides = payload
    start = time.perf_counter()
    try:
        result = execute_point(job)
    except Exception as exc:  # noqa: BLE001 — one bad point must not kill the sweep
        return JobRecord(
            index=index,
            key=key,
            status="error",
            overrides=overrides,
            error=f"{type(exc).__name__}: {exc}",
            duration_s=time.perf_counter() - start,
        )
    return JobRecord(
        index=index,
        key=key,
        status="ok",
        overrides=overrides,
        result=result,
        duration_s=time.perf_counter() - start,
    )


@dataclass
class CampaignReport:
    """Aggregate outcome of one campaign run, ordered by point index."""

    spec_name: str
    experiment: str
    records: List[JobRecord] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def ok_records(self) -> List[JobRecord]:
        return [record for record in self.records if record.ok]

    @property
    def failed_records(self) -> List[JobRecord]:
        return [record for record in self.records if not record.ok]

    @property
    def cached_count(self) -> int:
        return sum(1 for record in self.records if record.cached)

    @property
    def computed_count(self) -> int:
        return sum(1 for record in self.records if not record.cached)

    @property
    def compute_duration_s(self) -> float:
        """Summed per-job compute time, including what cached records cost
        when they were originally computed (preserved through the cache)."""
        return sum(record.duration_s for record in self.records)

    def counts(self) -> Dict[str, int]:
        """Point counts per status plus cache hits."""
        counts = {"total": len(self.records), "ok": 0, "error": 0, "timeout": 0}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        counts["cached"] = self.cached_count
        return counts

    def summary(self) -> str:
        """One-line human-readable digest."""
        counts = self.counts()
        return (
            f"campaign {self.spec_name!r}: {counts['total']} points, "
            f"{counts['ok']} ok ({counts['cached']} cached), "
            f"{counts['error']} errors, {counts['timeout']} timeouts "
            f"in {self.duration_s:.2f}s (compute {self.compute_duration_s:.2f}s)"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec_name": self.spec_name,
            "experiment": self.experiment,
            "duration_s": self.duration_s,
            "compute_duration_s": self.compute_duration_s,
            "counts": self.counts(),
            "records": [record.to_dict() for record in self.records],
        }


class CampaignRunner:
    """Executes a :class:`CampaignSpec` serially or over a worker pool.

    ``workers=0`` (or 1) selects the serial path; ``workers >= 2`` fans the
    pending points out over a :mod:`multiprocessing` pool.  With a
    :class:`~repro.campaign.cache.ResultCache` attached, previously computed
    points are served from disk and only the missing ones are executed, which
    also makes interrupted campaigns resumable.

    ``timeout_s`` bounds the wall-clock wait per job; a point that exceeds it
    is recorded with status ``"timeout"`` and its pool is torn down so
    stragglers cannot outlive the campaign.  Because a timeout can only be
    enforced across a process boundary, setting ``timeout_s`` routes even a
    ``workers=0`` run through a single-process pool.  ``chunksize`` batches
    job dispatch on the no-timeout pool path only; with a timeout, jobs are
    dispatched one at a time so each gets its own deadline.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        cache: Optional[ResultCache] = None,
        workers: Optional[int] = 0,
        timeout_s: Optional[float] = None,
        chunksize: int = 1,
        job_fn: Callable[[JobPayload], JobRecord] = run_campaign_job,
    ):
        if workers is None:
            workers = 0
        if workers < 0:
            raise CampaignError("workers must be >= 0")
        if timeout_s is not None and timeout_s <= 0:
            raise CampaignError("timeout_s must be positive")
        if chunksize < 1:
            raise CampaignError("chunksize must be >= 1")
        self.spec = spec
        self.cache = cache
        self.workers = workers
        self.timeout_s = timeout_s
        self.chunksize = chunksize
        self.job_fn = job_fn

    # ------------------------------------------------------------------

    def run(self) -> CampaignReport:
        """Execute the spec's missing points and return the report.

        Points stream through :meth:`~repro.campaign.spec.CampaignSpec.iter_shards`:
        with ``shard_size`` set, only one shard of validated jobs exists in
        memory at a time — each shard is looked up in the cache, its missing
        points executed and stored, then dropped before the next shard is
        materialised.  Without sharding there is exactly one shard, which is
        the original all-at-once behaviour.
        """
        start = time.perf_counter()
        tel = get_telemetry()
        hb = get_heartbeat()
        used_pool = self.workers >= 2 or self.timeout_s is not None
        records: Dict[int, JobRecord] = {}
        cache_hits = failed = 0
        if hb.enabled:
            hb.update(spec_name=self.spec.name, total=self.spec.point_count(), workers=self.workers)
        with tel.span("campaign.run", spec=self.spec.name, workers=self.workers):
            for shard in self.spec.iter_shards():
                pending: List[CampaignPoint] = []
                for point in shard:
                    cached = self._lookup(point)
                    if cached is not None:
                        records[point.index] = cached
                    else:
                        pending.append(point)
                cache_hits += len(shard) - len(pending)
                if tel.enabled:
                    tel.count("campaign.cache.hits", len(shard) - len(pending))
                    tel.count("campaign.cache.misses", len(pending))
                if hb.enabled:
                    # Shard boundary: cached points count as done immediately.
                    hb.advance(len(shard) - len(pending), cached=cache_hits)

                if pending:
                    logger.debug(
                        "campaign %r: executing %d pending point(s) (%s)",
                        self.spec.name,
                        len(pending),
                        "pool" if used_pool else "serial",
                    )
                    payloads = [(p.index, p.key, p.job, p.overrides) for p in pending]
                    # A timeout can only be enforced on a job running in a separate
                    # process, so timeout_s forces the pool path even at workers<=1.
                    if used_pool:
                        computed = self._iter_parallel(payloads)
                    else:
                        computed = self._iter_serial(payloads)
                    # Records are cached as they complete, so an interrupted
                    # campaign keeps every finished point and resumes from there.
                    for record in computed:
                        records[record.index] = record
                        self._store(record)
                        if not record.ok:
                            failed += 1
                        if hb.enabled:
                            hb.advance(1, failed=failed)
                        if tel.enabled and record.telemetry is not None:
                            # Pool jobs ran concurrently with the parent span,
                            # so their time must not be subtracted from its
                            # exclusive accounting; serial jobs consumed it.
                            tel.merge_snapshot(record.telemetry, remote=used_pool)
                        logger.debug(
                            "campaign %r: point %d finished with status %r in %.3fs",
                            self.spec.name,
                            record.index,
                            record.status,
                            record.duration_s,
                        )

        wall = time.perf_counter() - start
        report = CampaignReport(
            spec_name=self.spec.name,
            experiment=self.spec.experiment,
            records=[records[index] for index in sorted(records)],
            duration_s=wall,
        )
        utilization: Optional[float] = None
        if used_pool and wall > 0.0:
            busy = sum(r.duration_s for r in report.records if not r.cached)
            utilization = busy / (max(1, self.workers) * wall)
        if tel.enabled:
            tel.count("campaign.points", len(report.records))
            if utilization is not None:
                tel.gauge("campaign.worker_utilization", utilization)
        if hb.enabled:
            if utilization is not None:
                hb.update(worker_utilization=utilization)
            else:
                hb.update()
        logger.debug("%s", report.summary())
        return report

    def status(self) -> Dict[str, Any]:
        """Cache coverage of the spec without executing anything.

        Streams over the points, so the status of an arbitrarily large
        sharded campaign is computed in constant memory (plus the labels of
        the missing points).
        """
        total = cached = 0
        cached_duration = 0.0
        missing_labels: List[str] = []
        shard_size = self.spec.shard_size
        shards: List[Dict[str, int]] = []
        for point in self.spec.iter_points():
            total += 1
            hit = self._lookup(point)
            if hit is not None:
                cached += 1
                cached_duration += hit.duration_s
            else:
                missing_labels.append(point.label())
            if shard_size:
                shard_index = point.index // shard_size
                while len(shards) <= shard_index:
                    shards.append({"shard": len(shards), "total": 0, "cached": 0})
                shards[shard_index]["total"] += 1
                if hit is not None:
                    shards[shard_index]["cached"] += 1
        status: Dict[str, Any] = {
            "spec_name": self.spec.name,
            "total": total,
            "cached": cached,
            "cached_duration_s": cached_duration,
            "missing": len(missing_labels),
            "missing_points": missing_labels,
        }
        if shard_size:
            status["shard_size"] = shard_size
            status["shards"] = shards
        return status

    # ------------------------------------------------------------------
    # execution paths
    # ------------------------------------------------------------------

    def _iter_serial(self, payloads: Sequence[JobPayload]) -> Iterator[JobRecord]:
        """Serial fallback — same job function, same records, same bits."""
        for payload in payloads:
            yield self.job_fn(payload)

    def _iter_parallel(self, payloads: Sequence[JobPayload]) -> Iterator[JobRecord]:
        """Fan out over a pool, yielding each record as it completes.

        When a job exceeds ``timeout_s`` its worker is hung, so the pool is
        torn down and a fresh one is started for the jobs that have not
        finished yet — a straggler can neither hold a worker slot hostage
        nor cause queued jobs to be misreported as timed out.  Results that
        completed before the teardown are collected, not recomputed.
        """
        remaining: List[JobPayload] = list(payloads)
        ctx = multiprocessing.get_context()
        while remaining:
            pool = ctx.Pool(
                processes=max(1, self.workers),
                initializer=_init_worker,
                initargs=(telemetry_enabled(),),
            )
            restart = False
            try:
                if self.timeout_s is None:
                    yield from pool.imap(self.job_fn, remaining, chunksize=self.chunksize)
                    remaining = []
                else:
                    handles = [(payload, pool.apply_async(self.job_fn, (payload,))) for payload in remaining]
                    remaining = []
                    for position, (payload, handle) in enumerate(handles):
                        index, key, _job, overrides = payload
                        try:
                            yield handle.get(timeout=self.timeout_s)
                        except multiprocessing.TimeoutError:
                            restart = True
                            yield JobRecord(
                                index=index,
                                key=key,
                                status="timeout",
                                overrides=overrides,
                                error=f"job exceeded timeout of {self.timeout_s}s",
                                duration_s=self.timeout_s,
                            )
                            # Harvest what already finished; everything else
                            # goes to the fresh pool.
                            for later_payload, later_handle in handles[position + 1 :]:
                                if later_handle.ready():
                                    yield later_handle.get()
                                else:
                                    remaining.append(later_payload)
                            break
            finally:
                if restart:
                    # The straggler is still holding a worker; don't wait.
                    pool.terminate()
                else:
                    pool.close()
                pool.join()

    # ------------------------------------------------------------------
    # cache glue
    # ------------------------------------------------------------------

    def _lookup(self, point: CampaignPoint) -> Optional[JobRecord]:
        if self.cache is None:
            return None
        payload = self.cache.get(point.key)
        if payload is None or payload.get("status") != "ok" or "result" not in payload:
            return None
        duration = payload.get("duration_s")
        if duration is None:
            # Entries written before the runner recorded job durations: fall
            # back to the engine's own wall time preserved in the result.
            duration = (payload.get("result") or {}).get("engine_duration_s", 0.0)
        return JobRecord(
            index=point.index,
            key=point.key,
            status="ok",
            overrides=dict(point.overrides),
            result=payload["result"],
            duration_s=float(duration),
            cached=True,
        )

    def _store(self, record: JobRecord) -> None:
        # Only successes are cached: errors and timeouts should be retried
        # by the next run instead of being replayed from disk.
        if self.cache is None or not record.ok:
            return
        self.cache.put(
            record.key,
            {
                "status": record.status,
                "result": record.result,
                "overrides": record.overrides,
                "duration_s": record.duration_s,
                "spec_name": self.spec.name,
                "experiment": self.spec.experiment,
            },
        )

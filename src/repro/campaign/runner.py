"""Campaign execution: serial and multiprocessing fan-out with a result cache.

The unit of work is one :class:`~repro.campaign.spec.CampaignPoint`.  Every
point is executed by the same module-level :func:`run_campaign_job` function
whether the campaign runs serially or through a worker pool, so the two paths
are bit-identical by construction — the pool only changes *where* the function
runs, never *what* it computes.

Error handling happens inside the job function: an exception in one point is
captured into its :class:`JobRecord` instead of tearing down the campaign,
mirroring how hardware RowHammer harnesses keep a long sweep alive when a
single configuration misbehaves.  On top of that the runner is fault
tolerant (see :mod:`repro.faults`):

* transient failures are retried per point under a seeded
  :class:`~repro.faults.RetryPolicy` (exponential backoff + jitter);
* a worker that dies (OOM kill, segfault, injected ``kill`` fault) is
  detected through start sentinels plus pid liveness probes, the pool is
  respawned, unfinished points are re-dispatched, and a point that keeps
  killing its worker is quarantined with a ``status="crashed"`` record;
* SIGINT/SIGTERM drain in-flight bookkeeping and raise
  :class:`~repro.errors.CampaignInterrupted` — completed points are cached,
  so the next run resumes where the interrupted one stopped.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..attack.neurohammer import AttackResult, NeuroHammer
from ..circuit.crossbar import CrossbarArray
from ..config import AttackConfig, SimulationConfig
from ..errors import CampaignError, CampaignInterrupted, StoreError
from ..faults import (
    RetryPolicy,
    ShutdownFlag,
    corrupt_cache_entry,
    fire_point_faults,
    graceful_shutdown,
    hold_store_lock,
    is_retryable,
    perturb_result,
    set_current_attempt,
    should_corrupt_cache,
    should_hold_lock,
    should_perturb_result,
    should_tear_write,
    tear_payload,
)
from ..obs import (
    NULL_AUDIT,
    Telemetry,
    audit_capture,
    audit_enabled,
    get_audit,
    get_heartbeat,
    get_telemetry,
    telemetry_capture,
    telemetry_enabled,
)
from ..utils.logging import get_logger
from .cache import ResultCache
from .spec import CampaignPoint, CampaignSpec

#: Payload handed to a (possibly remote) job function.
JobPayload = Tuple[int, str, Dict[str, Any], Dict[str, Any]]

#: Poll interval of the pool wait loop (sentinels, results, deadlines, pids).
_POOL_POLL_S = 0.02

#: Poll interval while waiting on points another process holds a lease on.
_LEASE_POLL_S = 0.05

#: Fresh resilience-counter template for one runner execution.
_ZERO_RESILIENCE = {
    "retried": 0,
    "crashed": 0,
    "quarantined": 0,
    "pool_restarts": 0,
    "lease_steals": 0,
    "claim_conflicts": 0,
}

#: How long the parent waits for results that crossed the pipe before a
#: worker died to be delivered, before attributing the crash.
_CRASH_DRAIN_S = 0.5


def _latest_started_index(started: Dict[int, Tuple[int, float]], pid: int) -> Optional[int]:
    """The most recently announced job of one worker pid (its true victim)."""
    best: Optional[int] = None
    best_t = float("-inf")
    for index, (p, t_start) in started.items():
        if p == pid and t_start > best_t:
            best, best_t = index, t_start
    return best

logger = get_logger("campaign.runner")

#: Worker-side start-sentinel queue, armed by :func:`_init_worker`; ``None``
#: in the parent and on the serial path.
_worker_start_queue: Optional[Any] = None


def _init_worker(telemetry_on: bool, start_queue: Optional[Any] = None) -> None:
    """Pool initializer: arm worker-local telemetry and the start sentinel.

    The job payload tuple stays untouched (its content feeds the cache keys),
    so the telemetry flag and the sentinel queue travel through the pool
    initializer instead.

    Workers forked while the parent holds the graceful-shutdown scope inherit
    its cooperative signal handlers, under which ``pool.terminate()``'s
    SIGTERM would merely set a flag and never kill the worker.  Reset SIGTERM
    to its default so teardown works, and ignore SIGINT so a terminal Ctrl-C
    (delivered to the whole process group) interrupts only the parent, which
    then drains and tears the pool down deliberately.
    """
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if hasattr(signal, "SIGTERM"):
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    global _worker_start_queue
    _worker_start_queue = start_queue
    if telemetry_on:
        from ..obs import enable_telemetry

        enable_telemetry()


def _dispatch_job(job_fn: Callable[[JobPayload], "JobRecord"], payload: JobPayload, attempt: int) -> "JobRecord":
    """Execute one job attempt, announcing the start to the parent first.

    The start sentinel ``(point index, worker pid)`` is what lets the parent
    attribute a dead worker to the point it was running and start that job's
    timeout clock.  ``SimpleQueue.put`` is synchronous (no feeder thread), so
    the sentinel survives even a SIGKILL landing right after it.  The attempt
    number is parked in process-local fault-injection context so transient
    (``x1``) injected faults stop firing once the point is retried.
    """
    if _worker_start_queue is not None:
        _worker_start_queue.put((payload[0], os.getpid()))
    set_current_attempt(attempt)
    try:
        record = job_fn(payload)
    finally:
        set_current_attempt(0)
    record.attempts = attempt + 1
    return record


def attack_result_to_dict(result: AttackResult) -> Dict[str, Any]:
    """Flatten an :class:`AttackResult` into a JSON-serialisable record."""
    return {
        "pattern": result.pattern_name,
        "victim": list(result.victim),
        "aggressors": [list(cell) for cell in result.aggressors],
        "phases": len(result.phase_points),
        "flipped": bool(result.flipped),
        "pulses": int(result.pulses),
        "pulses_per_aggressor": float(result.pulses_per_aggressor),
        "stress_time_s": float(result.stress_time_s),
        "wall_clock_s": float(result.wall_clock_s),
        "victim_final_x": float(result.victim_final_x),
        "victim_temperature_k": float(result.victim_temperature_k),
        "pulse_length_s": float(result.pulse_length_s),
        "ambient_temperature_k": float(result.ambient_temperature_k),
        "hammer_energy_j": float(result.hammer_energy_j),
    }


def execute_attack_point(job: Dict[str, Any]) -> Dict[str, Any]:
    """Run one attack point: the campaign equivalent of ``hammer_once``.

    The crossbar is built from the point's simulation config at the attack's
    ambient temperature, and the fast quasi-static engine runs the attack.
    """
    simulation = SimulationConfig.from_dict(job["simulation"])
    attack = AttackConfig.from_dict(job["attack"])
    crossbar = CrossbarArray(
        geometry=simulation.geometry,
        wires=simulation.wires,
        ambient_temperature_k=attack.ambient_temperature_k,
    )
    outcome = NeuroHammer(crossbar).run(config=attack)
    return attack_result_to_dict(outcome)


def execute_montecarlo_point(job: Dict[str, Any]) -> Dict[str, Any]:
    """Run one Monte-Carlo population point and return its summary record."""
    # Imported lazily: repro.montecarlo builds on the campaign package.
    from ..montecarlo.engine import MonteCarloConfig, MonteCarloEngine

    simulation = SimulationConfig.from_dict(job["simulation"])
    attack = AttackConfig.from_dict(job["attack"])
    montecarlo = MonteCarloConfig.from_dict(job.get("montecarlo", {}))
    result = MonteCarloEngine(montecarlo, simulation=simulation, attack=attack).run()
    record = result.summary()
    # The engine's own wall time survives in the result payload (the runner
    # tracks the job's total under the JobRecord's duration_s), so cached
    # replays can still report the original compute cost.
    record["engine_duration_s"] = record.pop("duration_s", 0.0)
    record["conditions"] = result.conditions.to_dict()
    record["pulse_length_s"] = float(attack.pulse.length_s)
    record["ambient_temperature_k"] = float(attack.ambient_temperature_k)
    return record


def execute_point(job: Dict[str, Any]) -> Dict[str, Any]:
    """Run one materialised campaign point according to its job kind."""
    if job.get("kind", "attack") == "montecarlo":
        return execute_montecarlo_point(job)
    return execute_attack_point(job)


@dataclass
class JobRecord:
    """Outcome of one campaign point: a result, an error, a timeout or a crash."""

    index: int
    key: str
    status: str  # "ok" | "error" | "timeout" | "crashed"
    overrides: Dict[str, Any] = field(default_factory=dict)
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    duration_s: float = 0.0
    cached: bool = False
    #: Telemetry snapshot of the job's own scope (when telemetry is active).
    telemetry: Optional[Dict[str, Any]] = None
    #: Executions of this point in this run (retries and crash re-dispatches
    #: included); 1 for a single clean execution.
    attempts: int = 1
    #: For error records: whether the captured exception classified as
    #: transient (see :func:`repro.faults.is_retryable`).
    retryable: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "index": self.index,
            "key": self.key,
            "status": self.status,
            "overrides": self.overrides,
            "result": self.result,
            "error": self.error,
            "duration_s": self.duration_s,
            "cached": self.cached,
            "attempts": self.attempts,
        }
        if self.status == "error":
            payload["retryable"] = self.retryable
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry
        return payload


def run_campaign_job(payload: JobPayload) -> JobRecord:
    """Execute one job payload, capturing any exception into the record.

    With telemetry active, the job runs under a fresh job-local
    :class:`~repro.obs.Telemetry` whose snapshot rides back on the record —
    uniformly for the serial and pool paths, so per-job span trees cross the
    multiprocessing boundary as plain dicts and the parent merges them.

    With an ambient audit trail active in the *parent*, the job itself is
    audited with :data:`~repro.obs.NULL_AUDIT`: stage records from a serial
    in-process job would otherwise leak into the parent's stream, which pool
    jobs (separate processes) could never mirror, breaking the serial-vs-pool
    stream identity.  The campaign's own fingerprints are emitted parent-side
    per point, ordered by index (see :meth:`CampaignRunner.run`).
    """
    if audit_enabled():
        with audit_capture(NULL_AUDIT):
            return _run_campaign_job_observed(payload)
    return _run_campaign_job_observed(payload)


def _run_campaign_job_observed(payload: JobPayload) -> JobRecord:
    if telemetry_enabled():
        with telemetry_capture(Telemetry()) as tel:
            with tel.span("campaign.job", index=payload[0]):
                record = _execute_campaign_job(payload)
            record.telemetry = tel.snapshot()
        return record
    return _execute_campaign_job(payload)


def _execute_campaign_job(payload: JobPayload) -> JobRecord:
    index, key, job, overrides = payload
    start = time.perf_counter()
    try:
        # Chaos harness hook: inert unless $REPRO_FAULTS is set.  Raised
        # faults land in the except-clause like any real point failure.
        fire_point_faults(index)
        result = execute_point(job)
        # Chaos harness hook: nudge one numeric leaf of the freshly computed
        # result *before* publication, so cache, report and audit fingerprint
        # all agree with each other yet diverge from a clean run — the
        # scenario `repro obs audit` must localize.  Inert without faults.
        if should_perturb_result(index):
            result = perturb_result(result)
    except Exception as exc:  # noqa: BLE001 — one bad point must not kill the sweep
        return JobRecord(
            index=index,
            key=key,
            status="error",
            overrides=overrides,
            error=f"{type(exc).__name__}: {exc}",
            duration_s=time.perf_counter() - start,
            retryable=is_retryable(exc),
        )
    return JobRecord(
        index=index,
        key=key,
        status="ok",
        overrides=overrides,
        result=result,
        duration_s=time.perf_counter() - start,
    )


@dataclass
class CampaignReport:
    """Aggregate outcome of one campaign run, ordered by point index."""

    spec_name: str
    experiment: str
    records: List[JobRecord] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def ok_records(self) -> List[JobRecord]:
        return [record for record in self.records if record.ok]

    @property
    def failed_records(self) -> List[JobRecord]:
        return [record for record in self.records if not record.ok]

    @property
    def cached_count(self) -> int:
        return sum(1 for record in self.records if record.cached)

    @property
    def computed_count(self) -> int:
        return sum(1 for record in self.records if not record.cached)

    @property
    def compute_duration_s(self) -> float:
        """Summed per-job compute time, including what cached records cost
        when they were originally computed (preserved through the cache)."""
        return sum(record.duration_s for record in self.records)

    def counts(self) -> Dict[str, int]:
        """Point counts per status plus cache hits and re-executions."""
        counts = {"total": len(self.records), "ok": 0, "error": 0, "timeout": 0, "crashed": 0}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        counts["cached"] = self.cached_count
        # Re-executions beyond the first attempt: retries of transient
        # failures plus crash re-dispatches.
        counts["retried"] = sum(
            max(0, record.attempts - 1) for record in self.records if not record.cached
        )
        return counts

    def summary(self) -> str:
        """One-line human-readable digest."""
        counts = self.counts()
        line = (
            f"campaign {self.spec_name!r}: {counts['total']} points, "
            f"{counts['ok']} ok ({counts['cached']} cached), "
            f"{counts['error']} errors, {counts['timeout']} timeouts"
        )
        if counts["crashed"]:
            line += f", {counts['crashed']} crashed"
        if counts["retried"]:
            line += f", {counts['retried']} retried"
        line += f" in {self.duration_s:.2f}s (compute {self.compute_duration_s:.2f}s)"
        return line

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec_name": self.spec_name,
            "experiment": self.experiment,
            "duration_s": self.duration_s,
            "compute_duration_s": self.compute_duration_s,
            "counts": self.counts(),
            "records": [record.to_dict() for record in self.records],
        }


class CampaignRunner:
    """Executes a :class:`CampaignSpec` serially or over a worker pool.

    ``workers=0`` (or 1) selects the serial path; ``workers >= 2`` fans the
    pending points out over a :mod:`multiprocessing` pool.  With a
    :class:`~repro.campaign.cache.ResultCache` attached, previously computed
    points are served from disk and only the missing ones are executed, which
    also makes interrupted campaigns resumable.

    ``timeout_s`` bounds the wall-clock compute per job (measured from the
    job's start sentinel); a point that exceeds it is recorded with status
    ``"timeout"`` and its pool is torn down so stragglers cannot outlive the
    campaign.  Because a timeout can only be enforced across a process
    boundary, setting ``timeout_s`` routes even a ``workers=0`` run through a
    single-process pool.

    ``retry`` applies a :class:`~repro.faults.RetryPolicy` to error records
    whose exception classified as transient (solver non-convergence,
    OS-level flakes, injected transient faults); retries re-dispatch after a
    seeded backoff.  Timeouts are never retried — a hang is presumed
    deterministic.  ``max_crashes`` bounds how many times a point may take a
    worker down with it before it is quarantined with a ``"crashed"`` record.

    ``chunksize`` is accepted for backward compatibility but jobs are now
    dispatched individually so each one has its own start sentinel, deadline
    and crash attribution.

    With a *store-backed* cache (see :mod:`repro.store`), pending points are
    claimed through advisory leases before computing: N concurrent runs of
    one spec partition the sweep instead of duplicating it.  Points another
    process holds are deferred — this run polls for their published result,
    reclaims the lease if the holder releases without publishing, and steals
    it if the holder goes stale (dead pid or lapsed deadline).  Steals and
    claim conflicts are counted in :attr:`resilience`; legacy caches skip
    leasing entirely.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        cache: Optional[ResultCache] = None,
        workers: Optional[int] = 0,
        timeout_s: Optional[float] = None,
        chunksize: int = 1,
        job_fn: Callable[[JobPayload], JobRecord] = run_campaign_job,
        retry: Optional[RetryPolicy] = None,
        max_crashes: int = 3,
    ):
        if workers is None:
            workers = 0
        if workers < 0:
            raise CampaignError("workers must be >= 0")
        if timeout_s is not None and timeout_s <= 0:
            raise CampaignError("timeout_s must be positive")
        if chunksize < 1:
            raise CampaignError("chunksize must be >= 1")
        if max_crashes < 1:
            raise CampaignError("max_crashes must be >= 1")
        self.spec = spec
        self.cache = cache
        self.workers = workers
        self.timeout_s = timeout_s
        self.chunksize = chunksize
        self.job_fn = job_fn
        self.retry = retry
        self.max_crashes = max_crashes
        #: Resilience counters of the most recent :meth:`run`.
        self.resilience: Dict[str, int] = dict(_ZERO_RESILIENCE)
        self._shutdown: Optional[ShutdownFlag] = None
        self._used_pool = False
        #: Active lease manager (store-backed caches only); set per run.
        self._leases: Optional[Any] = None

    # ------------------------------------------------------------------

    def run(self) -> CampaignReport:
        """Execute the spec's missing points and return the report.

        Points stream through :meth:`~repro.campaign.spec.CampaignSpec.iter_shards`:
        with ``shard_size`` set, only one shard of validated jobs exists in
        memory at a time — each shard is looked up in the cache, its missing
        points executed and stored, then dropped before the next shard is
        materialised.  Without sharding there is exactly one shard, which is
        the original all-at-once behaviour.

        On SIGINT/SIGTERM the run drains its bookkeeping (completed records
        are stored and cached) and raises
        :class:`~repro.errors.CampaignInterrupted`; a second signal aborts
        immediately.
        """
        start = time.perf_counter()
        tel = get_telemetry()
        hb = get_heartbeat()
        used_pool = self.workers >= 2 or self.timeout_s is not None
        self._used_pool = used_pool
        self.resilience = dict(_ZERO_RESILIENCE)
        self._leases = self.cache.lease_manager() if self.cache is not None else None
        records: Dict[int, JobRecord] = {}
        cache_hits = failed = 0
        if hb.enabled:
            hb.update(spec_name=self.spec.name, total=self.spec.point_count(), workers=self.workers)

        def consume(record: JobRecord) -> None:
            """Fold one finished record into the run: cache, lease, counters."""
            nonlocal failed
            records[record.index] = record
            self._store(record)
            # Publish-then-release: the lease drops only once the result is
            # on disk (or the point finished non-ok and will be retried by a
            # later run — releasing lets another live process claim it now).
            self._release_point(record.key)
            if not record.ok:
                failed += 1
            if hb.enabled:
                hb.advance(1, failed=failed)
            if tel.enabled and record.telemetry is not None:
                # Pool jobs ran concurrently with the parent span, so their
                # time must not be subtracted from its exclusive accounting;
                # serial jobs consumed it.
                tel.merge_snapshot(record.telemetry, remote=used_pool)
            logger.debug(
                "campaign %r: point %d finished with status %r in %.3fs",
                self.spec.name,
                record.index,
                record.status,
                record.duration_s,
            )

        with graceful_shutdown() as shutdown:
            self._shutdown = shutdown
            try:
                with tel.span("campaign.run", spec=self.spec.name, workers=self.workers):
                    for shard in self.spec.iter_shards():
                        pending: List[CampaignPoint] = []
                        for point in shard:
                            cached = self._lookup(point)
                            if cached is not None:
                                records[point.index] = cached
                            else:
                                pending.append(point)
                        cache_hits += len(shard) - len(pending)
                        if tel.enabled:
                            tel.count("campaign.cache.hits", len(shard) - len(pending))
                            tel.count("campaign.cache.misses", len(pending))
                        if hb.enabled:
                            # Shard boundary: cached points count as done immediately.
                            hb.advance(len(shard) - len(pending), cached=cache_hits)
                        self._check_interrupted(records)

                        claimed, deferred, raced = self._claim_shard(pending)
                        for record in raced:
                            # Published by another process between our cache
                            # miss and the lease claim: a hit after all.
                            records[record.index] = record
                            cache_hits += 1
                            if hb.enabled:
                                hb.advance(1, cached=cache_hits)
                        if claimed or deferred:
                            logger.debug(
                                "campaign %r: executing %d claimed point(s), "
                                "%d deferred to other holders (%s)",
                                self.spec.name,
                                len(claimed),
                                len(deferred),
                                "pool" if used_pool else "serial",
                            )
                        if claimed:
                            # Records are cached as they complete, so an interrupted
                            # campaign keeps every finished point and resumes from there.
                            for record in self._execute_points(claimed):
                                consume(record)
                            self._check_interrupted(records)
                        if deferred:
                            for record in self._await_deferred(deferred):
                                consume(record)
                        self._check_interrupted(records)
            finally:
                self._shutdown = None
                if self._leases is not None:
                    # Normal completion released per point; this catches the
                    # interrupt/error paths so other processes are not stuck
                    # waiting on leases a dead campaign still "holds".
                    self._leases.release_all()
                    self._leases = None

        wall = time.perf_counter() - start
        report = CampaignReport(
            spec_name=self.spec.name,
            experiment=self.spec.experiment,
            records=[records[index] for index in sorted(records)],
            duration_s=wall,
        )
        self._audit_report(report)
        utilization: Optional[float] = None
        if used_pool and wall > 0.0:
            busy = sum(r.duration_s for r in report.records if not r.cached)
            utilization = busy / (max(1, self.workers) * wall)
        if tel.enabled:
            tel.count("campaign.points", len(report.records))
            if utilization is not None:
                tel.gauge("campaign.worker_utilization", utilization)
        if hb.enabled:
            if utilization is not None:
                hb.update(worker_utilization=utilization)
            else:
                hb.update()
        logger.debug("%s", report.summary())
        return report

    def _audit_report(self, report: CampaignReport) -> None:
        """Emit one ``campaign.point`` fingerprint per record, sorted by index.

        Runs parent-side after the sweep, over the same deterministic payload
        shape :meth:`_store` publishes (volatile wall-clock keys are stripped
        by the fingerprinter).  Because the records are keyed and ordered by
        point index — never by completion order — serial, pool and
        multi-process shared-store executions of one seeded spec produce
        byte-identical streams, and a cached replay matches the run that
        computed it.
        """
        audit = get_audit()
        if not audit.enabled:
            return
        for record in report.records:  # already sorted by index
            audit.record(
                "campaign.point",
                key=record.index,
                payload={
                    "status": record.status,
                    "result": record.result,
                    "overrides": record.overrides,
                    "spec_name": report.spec_name,
                    "experiment": report.experiment,
                },
                meta={"key": record.key, "status": record.status, "cached": record.cached},
            )

    def status(self) -> Dict[str, Any]:
        """Cache coverage of the spec without executing anything.

        Streams over the points, so the status of an arbitrarily large
        sharded campaign is computed in constant memory (plus the labels of
        the missing points).
        """
        total = cached = 0
        cached_duration = 0.0
        missing_labels: List[str] = []
        shard_size = self.spec.shard_size
        shards: List[Dict[str, int]] = []
        for point in self.spec.iter_points():
            total += 1
            hit = self._lookup(point)
            if hit is not None:
                cached += 1
                cached_duration += hit.duration_s
            else:
                missing_labels.append(point.label())
            if shard_size:
                shard_index = point.index // shard_size
                while len(shards) <= shard_index:
                    shards.append({"shard": len(shards), "total": 0, "cached": 0})
                shards[shard_index]["total"] += 1
                if hit is not None:
                    shards[shard_index]["cached"] += 1
        status: Dict[str, Any] = {
            "spec_name": self.spec.name,
            "total": total,
            "cached": cached,
            "cached_duration_s": cached_duration,
            "missing": len(missing_labels),
            "missing_points": missing_labels,
        }
        if shard_size:
            status["shard_size"] = shard_size
            status["shards"] = shards
        return status

    # ------------------------------------------------------------------
    # execution paths
    # ------------------------------------------------------------------

    def _stop_requested(self) -> bool:
        return self._shutdown is not None and self._shutdown.requested

    def _check_interrupted(self, records: Dict[int, JobRecord]) -> None:
        if not self._stop_requested():
            return
        signal_name = self._shutdown.signal_name if self._shutdown else "signal"
        raise CampaignInterrupted(
            f"campaign {self.spec.name!r} interrupted by {signal_name}: "
            f"{len(records)} point(s) finished and cached; rerun the same spec to resume"
        )

    def _execute_points(self, points: Sequence[CampaignPoint]) -> Iterator[JobRecord]:
        """Run points through the pool or serial path, whichever is active."""
        payloads = [(p.index, p.key, p.job, p.overrides) for p in points]
        # A timeout can only be enforced on a job running in a separate
        # process, so timeout_s forces the pool path even at workers<=1.
        if self._used_pool:
            return self._iter_parallel(payloads)
        return self._iter_serial(payloads)

    # ------------------------------------------------------------------
    # point leasing (store-backed caches)
    # ------------------------------------------------------------------

    def _claim_shard(
        self, pending: Sequence[CampaignPoint]
    ) -> Tuple[List[CampaignPoint], List[CampaignPoint], List[JobRecord]]:
        """Partition pending points into claimed / deferred / raced-cached.

        *Claimed* points are ours to compute (lease acquired, or a stale one
        stolen).  *Deferred* points are validly held by another live process
        — each one counts a claim conflict and is resolved later by
        :meth:`_await_deferred`.  *Raced* records cover the window between
        our cache miss and the claim: the holder published in the meantime,
        so the point is a cache hit after all and the fresh lease is dropped.
        Without leases (legacy cache, no cache) everything is claimed.
        """
        if self._leases is None:
            return list(pending), [], []
        claimed: List[CampaignPoint] = []
        deferred: List[CampaignPoint] = []
        raced: List[JobRecord] = []
        for point in pending:
            if self._leases.acquire(point.key) or self._try_steal(point):
                hit = self._lookup(point)
                if hit is not None:
                    self._release_point(point.key)
                    raced.append(hit)
                else:
                    claimed.append(point)
            else:
                self._note_claim_conflict(point.index)
                deferred.append(point)
        hb = get_heartbeat()
        if hb.enabled:
            hb.update(leases_held=len(self._leases.held))
        return claimed, deferred, raced

    def _try_steal(self, point: CampaignPoint) -> bool:
        """Steal the lease on one point iff its current holder is stale."""
        assert self._leases is not None
        state = self._leases.read(point.key)
        if state is None:
            # Released (or torn) between our failed acquire and this probe.
            return self._leases.acquire(point.key)
        if not self._leases.is_stale(state):
            return False
        if self._leases.steal(point.key):
            self._note_lease_steal(point.index, state)
            return True
        return False

    def _await_deferred(self, deferred: Sequence[CampaignPoint]) -> Iterator[JobRecord]:
        """Resolve points another process held when this shard was claimed.

        Each outstanding point settles one of three ways: the holder
        publishes (cache hit), the holder releases without publishing
        (reclaim and compute here), or the holder goes stale — dead pid or
        lapsed deadline — and its lease is stolen.  Liveness is guaranteed
        by the stale probe: a holder that stops refreshing loses the lease
        after at most one TTL, so this loop cannot wait forever.
        """
        outstanding: Dict[int, CampaignPoint] = {point.index: point for point in deferred}
        while outstanding:
            progressed = False
            claimed_now: List[CampaignPoint] = []
            for index in sorted(outstanding):
                point = outstanding[index]
                hit = self._lookup(point)
                if hit is not None:
                    del outstanding[index]
                    progressed = True
                    yield hit
                    continue
                assert self._leases is not None
                if self._leases.acquire(point.key) or self._try_steal(point):
                    del outstanding[index]
                    progressed = True
                    claimed_now.append(point)
            if claimed_now:
                for record in self._execute_points(claimed_now):
                    yield record
            if self._stop_requested():
                return
            if not progressed:
                self._refresh_leases()
                time.sleep(_LEASE_POLL_S)

    def _release_point(self, key: str) -> None:
        """Drop the lease on one key if this run holds it (best effort)."""
        if self._leases is not None and self._leases.holds(key):
            with contextlib.suppress(StoreError):
                self._leases.release(key)

    def _refresh_leases(self) -> None:
        """Opportunistically extend held leases past half-life (wait loops)."""
        if self._leases is None:
            return
        try:
            refreshed = self._leases.refresh_due()
        except StoreError as exc:
            logger.warning("campaign %r: lease refresh failed: %s", self.spec.name, exc)
            return
        if refreshed:
            tel = get_telemetry()
            if tel.enabled:
                tel.count("store.lease_refreshes", refreshed)

    def _iter_serial(self, payloads: Sequence[JobPayload]) -> Iterator[JobRecord]:
        """Serial fallback — same job function, same records, same bits."""
        for payload in payloads:
            self._refresh_leases()
            attempt = 0
            while True:
                record = _dispatch_job(self.job_fn, payload, attempt)
                if self._wants_retry(record, attempt):
                    attempt += 1
                    delay = self.retry.delay_s(attempt, key=record.key)  # type: ignore[union-attr]
                    self._note_retry(record, delay)
                    if delay > 0.0:
                        time.sleep(delay)
                    continue
                yield record
                break
            if self._stop_requested():
                return

    def _iter_parallel(self, payloads: Sequence[JobPayload]) -> Iterator[JobRecord]:
        """Fan out over a pool, yielding each record as it completes.

        The pool runs in *generations*: one pool serves dispatches until a
        fault forces a teardown — a job past its deadline (its worker is
        hung) or a dead worker (its in-flight job is lost).  Results that
        completed before the teardown are always harvested, never
        recomputed; everything unfinished is re-dispatched by the next
        generation.  A point whose worker died ``max_crashes`` times is
        quarantined with a ``"crashed"`` record instead of being
        re-dispatched forever.
        """
        pending: Dict[int, JobPayload] = {payload[0]: payload for payload in payloads}
        attempts: Dict[int, int] = {index: 0 for index in pending}
        crashes: Dict[int, int] = {index: 0 for index in pending}
        not_before: Dict[int, float] = {index: 0.0 for index in pending}
        ctx = multiprocessing.get_context()
        while pending:
            outcome = yield from self._run_pool_generation(ctx, pending, attempts, crashes, not_before)
            if outcome == "interrupted":
                return
            if outcome is not None:
                self._note_pool_restart(outcome)

    def _run_pool_generation(
        self,
        ctx: Any,
        pending: Dict[int, JobPayload],
        attempts: Dict[int, int],
        crashes: Dict[int, int],
        not_before: Dict[int, float],
    ) -> Iterator[JobRecord]:
        """One pool lifetime; returns the teardown reason (None = drained)."""
        start_queue = ctx.SimpleQueue()
        pool = ctx.Pool(
            processes=max(1, self.workers),
            initializer=_init_worker,
            initargs=(telemetry_enabled(), start_queue),
        )
        waiting = dict(pending)  # index -> payload, not yet dispatched
        handles: Dict[int, Any] = {}  # index -> AsyncResult
        started: Dict[int, Tuple[int, float]] = {}  # index -> (worker pid, t_start)
        workers_seen: Dict[int, Any] = {}  # pid -> Process snapshot
        outcome: Optional[str] = None
        try:
            while waiting or handles:
                self._refresh_leases()
                now = time.monotonic()
                for index in [i for i in waiting if not_before[i] <= now]:
                    handles[index] = pool.apply_async(
                        _dispatch_job, (self.job_fn, waiting.pop(index), attempts[index])
                    )
                while not start_queue.empty():
                    s_index, s_pid = start_queue.get()
                    if s_index in handles:
                        started[s_index] = (s_pid, time.monotonic())
                # Snapshot worker processes: the pool replaces dead workers in
                # place, so liveness must be probed on the objects we saw.
                for proc in getattr(pool, "_pool", []):
                    if proc.pid is not None:
                        workers_seen.setdefault(proc.pid, proc)
                progressed = False
                for index in [i for i in handles if handles[i].ready()]:
                    progressed = True
                    record = self._harvest(handles.pop(index), pending[index], attempts[index])
                    started.pop(index, None)
                    final = self._settle(record, pending, attempts, not_before, waiting)
                    if final is not None:
                        yield final
                if self._stop_requested():
                    outcome = "interrupted"
                    break
                timed_out = self._expire_deadlines(handles, started, pending, attempts)
                if timed_out:
                    for record in timed_out:
                        yield record
                    outcome = "timeout"
                    break
                dead_pids = {pid for pid, proc in workers_seen.items() if proc.exitcode is not None}
                if dead_pids and (handles or waiting):
                    # A dead worker is only guilty of the job named by its
                    # *last* start sentinel.  Any earlier sentinel from the
                    # same pid means that job completed (the worker moved
                    # on) and its result is fully in the outqueue pipe —
                    # the result-handler thread delivers it independent of
                    # worker death, so drain before attributing blame.
                    drain_deadline = time.monotonic() + _CRASH_DRAIN_S
                    while True:
                        for index in [i for i in handles if handles[i].ready()]:
                            record = self._harvest(handles.pop(index), pending[index], attempts[index])
                            started.pop(index, None)
                            final = self._settle(record, pending, attempts, not_before, waiting)
                            if final is not None:
                                yield final
                        lagging = [
                            index
                            for index, (pid, _t0) in started.items()
                            if pid in dead_pids
                            and index in handles
                            and index != _latest_started_index(started, pid)
                        ]
                        if not lagging or time.monotonic() >= drain_deadline:
                            break
                        time.sleep(_POOL_POLL_S)
                    for record in self._attribute_crashes(
                        dead_pids, handles, started, pending, attempts, crashes
                    ):
                        yield record
                    outcome = "worker-crash"
                    break
                if not progressed:
                    time.sleep(_POOL_POLL_S)
            # Teardown harvest: whatever finished while we decided to restart
            # is collected here — completed results are never recomputed.
            for index in [i for i in handles if handles[i].ready()]:
                record = self._harvest(handles.pop(index), pending[index], attempts[index])
                final = self._settle(record, pending, attempts, not_before, waiting)
                if final is not None:
                    yield final
        finally:
            if outcome is not None:
                # A worker is hung or dead (or we are stopping): don't wait.
                pool.terminate()
            else:
                pool.close()
            pool.join()
        return outcome

    def _wants_retry(self, record: JobRecord, attempt: int) -> bool:
        return (
            self.retry is not None
            and record.status == "error"
            and record.retryable
            and attempt + 1 < self.retry.max_attempts
            and not self._stop_requested()
        )

    def _settle(
        self,
        record: JobRecord,
        pending: Dict[int, JobPayload],
        attempts: Dict[int, int],
        not_before: Dict[int, float],
        waiting: Dict[int, JobPayload],
    ) -> Optional[JobRecord]:
        """Decide a harvested record's fate: final (returned) or re-dispatch."""
        index = record.index
        if self._wants_retry(record, attempts[index]):
            attempts[index] += 1
            delay = self.retry.delay_s(attempts[index], key=record.key)  # type: ignore[union-attr]
            self._note_retry(record, delay)
            not_before[index] = time.monotonic() + delay
            waiting[index] = pending[index]
            return None
        del pending[index]
        return record

    def _harvest(self, handle: Any, payload: JobPayload, attempt: int) -> JobRecord:
        """Fetch one finished handle, degrading delivery failures to records.

        ``AsyncResult.get`` re-raises whatever crossed the pipe — typically a
        ``MaybeEncodingError`` for an unpicklable result, or an exception a
        custom ``job_fn`` let escape.  One bad delivery must not kill the
        campaign, so it becomes an ordinary error record.
        """
        index, key, _job, overrides = payload
        try:
            return handle.get()
        except Exception as exc:  # noqa: BLE001 — degrade, don't die
            logger.warning("campaign point %d failed in result delivery: %s", index, exc)
            tel = get_telemetry()
            if tel.enabled:
                tel.count("campaign.harvest_errors")
            return JobRecord(
                index=index,
                key=key,
                status="error",
                overrides=overrides,
                error=f"result delivery failed: {type(exc).__name__}: {exc}",
                retryable=is_retryable(exc),
                attempts=attempt + 1,
            )

    def _expire_deadlines(
        self,
        handles: Dict[int, Any],
        started: Dict[int, Tuple[int, float]],
        pending: Dict[int, JobPayload],
        attempts: Dict[int, int],
    ) -> List[JobRecord]:
        """Turn jobs past their per-job deadline into timeout records.

        The clock starts at the job's start sentinel, so queued jobs are not
        charged for time spent waiting behind a straggler.  Timeouts are
        terminal — a hang is presumed deterministic, so there is no retry.
        """
        if self.timeout_s is None:
            return []
        now = time.monotonic()
        expired: List[JobRecord] = []
        for index, (_pid, t_start) in list(started.items()):
            if index not in handles or now - t_start <= self.timeout_s:
                continue
            handles.pop(index)
            started.pop(index)
            payload = pending.pop(index)
            expired.append(
                JobRecord(
                    index=index,
                    key=payload[1],
                    status="timeout",
                    overrides=payload[3],
                    error=f"job exceeded timeout of {self.timeout_s}s",
                    duration_s=self.timeout_s,
                    attempts=attempts[index] + 1,
                )
            )
        return expired

    def _attribute_crashes(
        self,
        dead_pids: Sequence[int],
        handles: Dict[int, Any],
        started: Dict[int, Tuple[int, float]],
        pending: Dict[int, JobPayload],
        attempts: Dict[int, int],
        crashes: Dict[int, int],
    ) -> List[JobRecord]:
        """Map dead workers to the points they ran; quarantine repeat killers.

        A worker that died before announcing its job cannot be attributed;
        the pool restart alone re-dispatches everything unfinished, which is
        the conservative recovery (no crash is charged to any point).
        """
        dead = set(dead_pids)
        victims = [index for index, (pid, _t0) in started.items() if pid in dead and index in handles]
        if not victims:
            logger.warning(
                "campaign %r: worker died before announcing its job; restarting pool",
                self.spec.name,
            )
            return []
        records: List[JobRecord] = []
        for index in sorted(victims):
            handles.pop(index)
            started.pop(index)
            crashes[index] += 1
            self._note_crash(index, crashes[index])
            if crashes[index] >= self.max_crashes:
                payload = pending.pop(index)
                records.append(
                    JobRecord(
                        index=index,
                        key=payload[1],
                        status="crashed",
                        overrides=payload[3],
                        error=(
                            f"worker crashed {crashes[index]} time(s) running this point; "
                            f"quarantined at max_crashes={self.max_crashes}"
                        ),
                        attempts=crashes[index],
                    )
                )
                self._note_quarantine(index)
            # else: the point stays pending and the next generation retries it.
        return records

    # ------------------------------------------------------------------
    # resilience bookkeeping
    # ------------------------------------------------------------------

    def _note_retry(self, record: JobRecord, delay: float) -> None:
        self.resilience["retried"] += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.count("campaign.retries")
            if record.telemetry is not None:
                # The failed attempt's spans would otherwise be lost: only
                # the final record flows through the run loop's merge.
                tel.merge_snapshot(record.telemetry, remote=self._used_pool)
        hb = get_heartbeat()
        if hb.enabled:
            hb.update(retried=self.resilience["retried"])
        logger.debug(
            "campaign %r: point %d attempt %d failed (%s); retrying in %.3fs",
            self.spec.name,
            record.index,
            record.attempts,
            record.error,
            delay,
        )

    def _note_crash(self, index: int, count: int) -> None:
        self.resilience["crashed"] += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.count("campaign.crashes")
        hb = get_heartbeat()
        if hb.enabled:
            hb.update(crashed=self.resilience["crashed"])
        logger.warning(
            "campaign %r: worker crashed running point %d (crash %d/%d)",
            self.spec.name,
            index,
            count,
            self.max_crashes,
        )

    def _note_quarantine(self, index: int) -> None:
        self.resilience["quarantined"] += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.count("campaign.quarantined")
        hb = get_heartbeat()
        if hb.enabled:
            hb.update(quarantined=self.resilience["quarantined"])
        logger.warning("campaign %r: point %d quarantined", self.spec.name, index)

    def _note_pool_restart(self, reason: str) -> None:
        self.resilience["pool_restarts"] += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.count("campaign.pool_restarts")
        logger.warning("campaign %r: worker pool restarted (%s)", self.spec.name, reason)

    def _note_lease_steal(self, index: int, state: Any) -> None:
        self.resilience["lease_steals"] += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.count("store.lease_steals")
        hb = get_heartbeat()
        if hb.enabled:
            hb.update(lease_steals=self.resilience["lease_steals"])
        logger.warning(
            "campaign %r: stole stale lease on point %d (holder pid %d on %s)",
            self.spec.name,
            index,
            state.pid,
            state.host or "?",
        )

    def _note_claim_conflict(self, index: int) -> None:
        self.resilience["claim_conflicts"] += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.count("store.claim_conflicts")
        hb = get_heartbeat()
        if hb.enabled:
            hb.update(claim_conflicts=self.resilience["claim_conflicts"])
        logger.debug(
            "campaign %r: point %d is leased by another process; deferring",
            self.spec.name,
            index,
        )

    # ------------------------------------------------------------------
    # cache glue
    # ------------------------------------------------------------------

    def _lookup(self, point: CampaignPoint) -> Optional[JobRecord]:
        if self.cache is None:
            return None
        payload = self.cache.get(point.key)
        if payload is None or payload.get("status") != "ok" or "result" not in payload:
            return None
        duration = payload.get("duration_s")
        if duration is None:
            # Entries written before the runner recorded job durations: fall
            # back to the engine's own wall time preserved in the result.
            duration = (payload.get("result") or {}).get("engine_duration_s", 0.0)
        return JobRecord(
            index=point.index,
            key=point.key,
            status="ok",
            overrides=dict(point.overrides),
            result=payload["result"],
            duration_s=float(duration),
            cached=True,
        )

    def _store(self, record: JobRecord) -> None:
        # Only successes are cached: errors and timeouts should be retried
        # by the next run instead of being replayed from disk.  Cached
        # records came *from* the store; re-publishing them is pure churn.
        if self.cache is None or not record.ok or record.cached:
            return
        # Chaos harness hook: stall the store's index write lock right
        # before this point publishes, so concurrent writers exercise the
        # seeded "database is locked" retries.  Inert without $REPRO_FAULTS.
        if should_hold_lock(record.index):
            hold_store_lock(self.cache)
        try:
            path = self.cache.put(
                record.key,
                {
                    "status": record.status,
                    "result": record.result,
                    "overrides": record.overrides,
                    "duration_s": record.duration_s,
                    "spec_name": self.spec.name,
                    "experiment": self.spec.experiment,
                },
            )
        except StoreError as exc:
            # Publishing is best-effort: a store that went read-only or
            # locked-out mid-run costs the cache entry, never the computed
            # record or the campaign.
            logger.warning(
                "campaign %r: could not publish point %d to the result store: %s",
                self.spec.name,
                record.index,
                exc,
            )
            tel = get_telemetry()
            if tel.enabled:
                tel.count("store.publish_failures")
            return
        # Chaos harness hooks: damage the freshly written entry so the next
        # reader exercises the quarantine paths.  Inert without $REPRO_FAULTS.
        if should_corrupt_cache(record.index):
            corrupt_cache_entry(path)
        if should_tear_write(record.index):
            tear_payload(path)

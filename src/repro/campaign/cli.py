"""`python -m repro` / `repro` — the unified reproduction command line.

Subcommands::

    repro run-fig {2a,3a,3b,3c,3d} [--save DIR] [--chart] [--workers N] [--cache DIR]
    repro campaign run SPEC.json [--workers N] [--cache DIR] [--no-cache]
                                 [--store] [--lease-ttl S]
                                 [--timeout S] [--chunksize N] [--shard-size N]
                                 [--retries N] [--retry-delay S] [--max-crashes N]
                                 [--inject-faults SPEC] [--save DIR] [--json]
    repro campaign status SPEC.json [--cache DIR]
    repro store verify [ROOT] [--repair] [--json]
    repro store gc [ROOT] [--json]
    repro store migrate [ROOT] [--lease-ttl S] [--json]
    repro mc run SPEC.json [--samples N] [--seed N] [--mode anchored|full_array]
                           [--scalar] [--rows N] [--export-cells OUT.npz]
                           [--show-distributions] [--save DIR] [--json]
    repro mc map SPEC.json [--workers N] [--cache DIR] [--save DIR] [--json]
                           [--adaptive] [--target-ci H] [--budget N]
                           [--threshold P] [--batch-size N] [--point-max N]
    repro profile [--output OUT.json] [--top N] [--sort total|excl] CMD...
    repro obs runs [--limit N] [--status STATUS] [--json]
    repro obs show RUN [--json]
    repro obs diff RUN_A RUN_B [--json]
    repro obs audit RUN_A [RUN_B] [--check GOLDEN.jsonl] [--export OUT.jsonl]
                    [--cache-a DIR] [--cache-b DIR] [--json]
    repro obs top RUN [--once] [--poll S] [--timeout S]
    repro obs export RUN [--output OUT.prom]
    repro obs check-bench [--bench-dir DIR] [--baselines FILE] [--json]
    repro version

``run-fig`` regenerates one paper figure and prints its table (figures 3a-3d
execute through the campaign engine and accept ``--workers``/``--cache``);
``campaign run`` executes an arbitrary sweep spec through the worker pool
with the result cache (``--shard-size`` streams very large sweeps through
the cache in bounded-memory shards), and ``campaign status`` reports how
much of a spec is already answered by the cache without computing anything
(``--follow`` instead tails the live heartbeat of a run executing in another
process).  ``campaign run`` is fault tolerant: transiently failing points are
retried with seeded backoff (``--retries``/``--retry-delay``), a point that
keeps killing its worker is quarantined after ``--max-crashes`` crashes, the
first SIGINT/SIGTERM drains bookkeeping and exits 130 with every finished
point cached, and ``--inject-faults`` arms the deterministic chaos harness
(:mod:`repro.faults.inject`) used to test all of the above.

``campaign run --store`` promotes the cache to the concurrent-safe shared
result store (:mod:`repro.store`): a crash-consistent sqlite index over
checksummed payloads plus advisory point leases, so N simultaneous runs of
one spec partition the sweep instead of duplicating it (store directories
are auto-detected afterwards, no flag needed).  The ``repro store`` group
operates on such a directory: ``verify`` re-hashes every entry (``--repair``
quarantines damage), ``gc`` sweeps orphan payloads / temp files / stale
leases, and ``migrate`` converts a legacy per-file cache in place.

``mc run`` evaluates one Monte-Carlo cell population from a
``kind="montecarlo"`` spec (``--export-cells`` dumps the per-cell sampled
parameters and outcomes as npz for offline analysis; ``--show-distributions``
prints the provenance of the spec's variability sigmas instead of running);
``mc map`` sweeps a 2-D parameter plane of populations into a
flip-probability map — fixed-n through the campaign runner, or with
``--adaptive`` through CI-driven refinement that spends a global sample
budget where the interval still straddles the flip boundary.

``profile`` runs any other subcommand with telemetry enabled and prints a
flame-style span table plus counter/histogram report afterwards
(``--output`` also writes the raw snapshot and a reproducibility manifest
as JSON); ``campaign run``, ``mc run`` and ``mc map`` additionally accept
``--telemetry OUT.json`` to capture the same snapshot without the report.

Every ``campaign run`` / ``mc run`` / ``mc map`` / ``profile`` invocation is
additionally recorded in the run ledger under the obs dir (``--obs-dir``,
``$REPRO_OBS_DIR``, default ``.repro-obs``; ``--no-obs`` skips it) together
with a live heartbeat file a concurrent process can tail.  The ``repro obs``
group reads that ledger: ``runs`` lists recorded invocations, ``show``
renders one snapshot, ``diff`` reports counter/gauge/span deltas between two
runs, ``top`` tails a running job, ``export`` emits OpenMetrics text, and
``check-bench`` gates the benchmark trajectory against committed baselines.

Recorded commands additionally accept ``--audit``: the run then collects a
determinism fingerprint stream (SHA-256 of the numerical payloads at stage
boundaries, keyed by point/batch/spawn identity — see :mod:`repro.obs.audit`)
next to the ledger entry.  ``repro obs audit RUN_A RUN_B`` diffs two streams
and pinpoints the first divergent stage; ``--check GOLDEN.jsonl`` compares a
run against a committed golden stream as a CI determinism gate, and
``--export`` writes a stream out to become that golden file.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import CampaignInterrupted, ReproError
from ..faults import FAULTS_ENV, FaultPlan, RetryPolicy
from ..obs import (
    BASELINES_FILENAME,
    DEFAULT_OBS_DIR,
    OBS_DIR_ENV,
    AuditTrail,
    HeartbeatWriter,
    RunLedger,
    Telemetry,
    audit_capture,
    build_manifest,
    diff_audit_streams,
    check_bench,
    diff_snapshots,
    follow_heartbeat,
    gate_passed,
    heartbeat_scope,
    load_baselines,
    load_bench_records,
    new_run_id,
    payload_max_abs_diff,
    read_audit_stream,
    read_heartbeat,
    render_audit_diff,
    render_check_report,
    render_diff,
    render_heartbeat,
    render_openmetrics,
    render_report,
    render_runs_table,
    resilience_counts,
    strip_volatile,
    telemetry_capture,
    write_audit_stream,
    write_snapshot,
)
from ..utils.logging import get_logger
from .aggregate import summarise, to_experiment_result
from .cache import ResultCache
from .runner import CampaignRunner
from .spec import CampaignSpec

logger = get_logger("campaign.cli")

#: Default on-disk cache used by ``campaign run`` unless --no-cache is given.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Figures 3a-3d run through the campaign engine and accept workers/cache.
CAMPAIGN_FIGURES = ("3a", "3b", "3c", "3d")


def _figure_registry() -> Dict[str, Callable[..., Any]]:
    """Figure id -> experiment callable, imported lazily to keep startup light."""
    from ..experiments import fig2a_experiment, run_fig3a, run_fig3b, run_fig3c, run_fig3d

    return {
        "2a": fig2a_experiment,
        "3a": run_fig3a,
        "3b": run_fig3b,
        "3c": run_fig3c,
        "3d": run_fig3d,
    }


def build_parser() -> argparse.ArgumentParser:
    """The complete argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NeuroHammer reproduction: regenerate paper figures and run attack campaigns.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    fig = subparsers.add_parser("run-fig", help="regenerate one paper figure")
    fig.add_argument("figure", choices=sorted(_FIGURE_IDS), help="figure to regenerate")
    fig.add_argument("--save", metavar="DIR", help="also write CSV/JSON exports into DIR")
    fig.add_argument("--chart", action="store_true", help="print an ASCII chart next to the table")
    fig.add_argument("--workers", type=int, default=0, help="worker processes (figures 3a/3c only)")
    fig.add_argument("--cache", metavar="DIR", help="result cache directory (figures 3a/3c only)")
    fig.set_defaults(handler=_cmd_run_fig)

    campaign = subparsers.add_parser("campaign", help="run or inspect a sweep campaign")
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    run = campaign_sub.add_parser("run", help="execute a campaign spec through the worker pool")
    run.add_argument("spec", help="path to a CampaignSpec JSON file")
    run.add_argument("--workers", type=int, default=0, help="worker processes (0 = serial)")
    run.add_argument("--cache", metavar="DIR", default=None, help=f"cache directory (default {DEFAULT_CACHE_DIR})")
    run.add_argument("--no-cache", action="store_true", help="disable the result cache entirely")
    run.add_argument(
        "--store", action="store_true",
        help="use the concurrent-safe shared result store at the cache directory "
        "(sqlite index + point leases; store directories are auto-detected afterwards)",
    )
    run.add_argument(
        "--lease-ttl", type=float, default=None, metavar="S",
        help="point-lease lifetime before other processes may steal it (store backend; default 600)",
    )
    run.add_argument("--timeout", type=float, default=None, metavar="S", help="per-job timeout in seconds")
    run.add_argument(
        "--chunksize", type=int, default=1,
        help="jobs handed to a worker at a time (no effect with --timeout: jobs then dispatch singly)",
    )
    run.add_argument(
        "--shard-size", type=int, default=None, metavar="N",
        help="materialise and dispatch N points at a time (overrides the spec; 0 = all at once)",
    )
    run.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="re-execute a transiently failing point up to N times with seeded backoff (0 disables; default 2)",
    )
    run.add_argument(
        "--retry-delay", type=float, default=0.05, metavar="S",
        help="base backoff before the first retry; doubles per retry with seeded jitter (default 0.05s)",
    )
    run.add_argument(
        "--max-crashes", type=int, default=3, metavar="N",
        help="quarantine a point after it crashes its worker N times (default 3)",
    )
    run.add_argument(
        "--inject-faults", metavar="SPEC", default=None,
        help="chaos harness: seeded fault-injection spec, e.g. 'raise@1x2;kill@4x99;seed=7' "
        "(see repro.faults.inject; equivalent to setting $REPRO_FAULTS)",
    )
    run.add_argument("--save", metavar="DIR", help="write the aggregated CSV/JSON exports into DIR")
    run.add_argument("--json", action="store_true", help="print the full report as JSON instead of a table")
    _add_telemetry_flag(run)
    _add_obs_flags(run)
    run.set_defaults(handler=_cmd_campaign_run)

    status = campaign_sub.add_parser("status", help="report cache coverage of a spec")
    status.add_argument("spec", help="path to a CampaignSpec JSON file")
    status.add_argument("--cache", metavar="DIR", default=None, help=f"cache directory (default {DEFAULT_CACHE_DIR})")
    status.add_argument(
        "--shard-size", type=int, default=None, metavar="N",
        help="report per-shard coverage at N points per shard (overrides the spec)",
    )
    status.add_argument(
        "--follow", action="store_true",
        help="tail the live heartbeat of a run of this spec executing in another process",
    )
    status.add_argument("--poll", type=float, default=0.1, metavar="S", help="heartbeat poll interval (default 0.1s)")
    status.add_argument(
        "--timeout", type=float, default=60.0, metavar="S",
        help="give up after S seconds without a (new) heartbeat (default 60)",
    )
    _add_obs_dir_flag(status)
    status.set_defaults(handler=_cmd_campaign_status)

    mc = subparsers.add_parser("mc", help="Monte-Carlo variability studies")
    mc_sub = mc.add_subparsers(dest="mc_command", required=True)

    mc_run = mc_sub.add_parser("run", help="evaluate one sampled cell population")
    mc_run.add_argument("spec", help="path to a kind='montecarlo' CampaignSpec JSON file")
    mc_run.add_argument("--samples", type=int, default=None, help="override the population size")
    mc_run.add_argument("--seed", type=int, default=None, help="override the population seed")
    mc_run.add_argument(
        "--mode", choices=("anchored", "full_array"), default=None,
        help="override the evaluation mode: anchored per-victim lanes or whole-array re-solves",
    )
    mc_run.add_argument(
        "--scalar", action="store_true",
        help="use the scalar reference engine instead of the vectorized one (anchored mode only)",
    )
    mc_run.add_argument("--rows", type=int, default=16, metavar="N", help="per-cell table rows to print")
    mc_run.add_argument(
        "--export-cells", metavar="OUT.npz", default=None,
        help="dump per-cell sampled parameters and outcome arrays as a compressed npz",
    )
    mc_run.add_argument(
        "--show-distributions", action="store_true",
        help="print the provenance (placeholder vs literature) of the spec's sigmas and exit",
    )
    mc_run.add_argument("--save", metavar="DIR", help="write the population CSV/JSON exports into DIR")
    mc_run.add_argument("--json", action="store_true", help="print the summary as JSON instead of a table")
    _add_telemetry_flag(mc_run)
    _add_obs_flags(mc_run)
    mc_run.set_defaults(handler=_cmd_mc_run)

    mc_map = mc_sub.add_parser("map", help="flip-probability map over a 2-D parameter plane")
    mc_map.add_argument("spec", help="path to a kind='montecarlo' grid spec with exactly two axes")
    mc_map.add_argument("--workers", type=int, default=0, help="worker processes (0 = serial)")
    mc_map.add_argument("--cache", metavar="DIR", default=None, help="result cache directory")
    mc_map.add_argument(
        "--adaptive", action="store_true",
        help="CI-driven refinement: allocate samples where the interval straddles the flip boundary",
    )
    mc_map.add_argument(
        "--target-ci", type=float, default=0.02, metavar="H",
        help="target CI half-width per map point (adaptive mode; default 0.02)",
    )
    mc_map.add_argument(
        "--budget", type=int, default=0, metavar="N",
        help="global sample budget across the plane (adaptive mode; 0 = unbounded)",
    )
    mc_map.add_argument(
        "--threshold", type=float, default=0.5, metavar="P",
        help="decision threshold whose straddling points are refined first (default 0.5)",
    )
    mc_map.add_argument(
        "--batch-size", type=int, default=64, metavar="N",
        help="samples per refinement batch (adaptive mode; default 64)",
    )
    mc_map.add_argument(
        "--point-max", type=int, default=16384, metavar="N",
        help="hard per-point sample ceiling (adaptive mode; default 16384)",
    )
    mc_map.add_argument("--save", metavar="DIR", help="write the map CSV/JSON exports into DIR")
    mc_map.add_argument("--json", action="store_true", help="print the per-point records as JSON")
    _add_telemetry_flag(mc_map)
    _add_obs_flags(mc_map)
    mc_map.set_defaults(handler=_cmd_mc_map)

    profile = subparsers.add_parser(
        "profile",
        help="run any repro subcommand with telemetry enabled and print a span/metric report",
    )
    profile.add_argument(
        "--output", metavar="OUT.json", default=None,
        help="also write the raw telemetry snapshot plus a reproducibility manifest as JSON",
    )
    profile.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="keep only the N largest span groups per sibling level of the table",
    )
    profile.add_argument(
        "--sort", choices=("total", "excl"), default="total",
        help="span-table sibling order: total or exclusive time (default total)",
    )
    _add_obs_flags(profile)
    profile.add_argument(
        "cmd", nargs=argparse.REMAINDER,
        help="the repro command to profile, e.g. `repro profile mc run SPEC.json`",
    )
    profile.set_defaults(handler=_cmd_profile)

    obs = subparsers.add_parser(
        "obs",
        help="cross-run observability: run ledger, live monitoring, metrics export, bench gate",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    obs_runs = obs_sub.add_parser("runs", help="list the recorded runs in the ledger")
    obs_runs.add_argument("--limit", type=int, default=20, metavar="N", help="show the N most recent runs (default 20)")
    obs_runs.add_argument(
        "--status", choices=("ok", "error", "interrupted"), default=None,
        help="only list runs with this recorded status",
    )
    obs_runs.add_argument("--json", action="store_true", help="print the index entries as JSON")
    _add_obs_dir_flag(obs_runs)
    obs_runs.set_defaults(handler=_cmd_obs_runs)

    obs_show = obs_sub.add_parser("show", help="render one recorded run's telemetry snapshot")
    obs_show.add_argument("run", help="run id, unique prefix, or `latest`/`latest~N`")
    obs_show.add_argument("--json", action="store_true", help="print the raw persisted payload as JSON")
    _add_obs_dir_flag(obs_show)
    obs_show.set_defaults(handler=_cmd_obs_show)

    obs_diff = obs_sub.add_parser("diff", help="counter/gauge/span deltas between two recorded runs")
    obs_diff.add_argument("run_a", help="baseline run reference")
    obs_diff.add_argument("run_b", help="comparison run reference")
    obs_diff.add_argument("--json", action="store_true", help="print the structured diff as JSON")
    _add_obs_dir_flag(obs_diff)
    obs_diff.set_defaults(handler=_cmd_obs_diff)

    obs_audit = obs_sub.add_parser(
        "audit", help="diff the determinism fingerprint streams of two recorded runs"
    )
    obs_audit.add_argument("run_a", help="run id, unique prefix, or `latest`/`latest~N`")
    obs_audit.add_argument(
        "run_b", nargs="?", default=None,
        help="second run to compare against (omit with --check or --export)",
    )
    obs_audit.add_argument(
        "--check", metavar="GOLDEN.jsonl", default=None,
        help="compare RUN_A's stream against a committed golden stream file (CI determinism gate)",
    )
    obs_audit.add_argument(
        "--export", metavar="OUT.jsonl", default=None,
        help="write RUN_A's stream to a file (e.g. to commit as the golden stream)",
    )
    obs_audit.add_argument(
        "--cache-a", metavar="DIR", default=None,
        help="result cache/store RUN_A computed into; with --cache-b, a divergent "
        "campaign point also reports the max-abs-diff between the cached payloads",
    )
    obs_audit.add_argument(
        "--cache-b", metavar="DIR", default=None,
        help="result cache/store the second stream's run computed into (see --cache-a)",
    )
    obs_audit.add_argument("--json", action="store_true", help="print the diff report as JSON")
    _add_obs_dir_flag(obs_audit)
    obs_audit.set_defaults(handler=_cmd_obs_audit)

    obs_top = obs_sub.add_parser("top", help="tail the live heartbeat of a running job")
    obs_top.add_argument("run", help="run id, unique prefix, or `latest`")
    obs_top.add_argument("--once", action="store_true", help="print the current state and exit")
    obs_top.add_argument("--poll", type=float, default=0.1, metavar="S", help="poll interval (default 0.1s)")
    obs_top.add_argument(
        "--timeout", type=float, default=60.0, metavar="S",
        help="give up after S seconds without a new heartbeat (default 60)",
    )
    _add_obs_dir_flag(obs_top)
    obs_top.set_defaults(handler=_cmd_obs_top)

    obs_export = obs_sub.add_parser(
        "export", help="render a recorded run's snapshot as OpenMetrics/Prometheus text"
    )
    obs_export.add_argument("run", help="run id, unique prefix, or `latest`/`latest~N`")
    obs_export.add_argument("--output", metavar="OUT.prom", default=None, help="write to a file instead of stdout")
    _add_obs_dir_flag(obs_export)
    obs_export.set_defaults(handler=_cmd_obs_export)

    obs_check = obs_sub.add_parser(
        "check-bench", help="gate the benchmark trajectory against committed baselines"
    )
    obs_check.add_argument(
        "--bench-dir", metavar="DIR", default="benchmarks",
        help="directory holding BENCH_history.jsonl / BENCH_*.json (default benchmarks/)",
    )
    obs_check.add_argument(
        "--baselines", metavar="FILE", default=None,
        help=f"baselines file (default <bench-dir>/{BASELINES_FILENAME})",
    )
    obs_check.add_argument("--json", action="store_true", help="print the check report as JSON")
    obs_check.set_defaults(handler=_cmd_obs_check_bench)

    store = subparsers.add_parser(
        "store",
        help="operate on a concurrent-safe shared result store directory",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_verify = store_sub.add_parser(
        "verify", help="re-hash every entry against its indexed checksum"
    )
    store_verify.add_argument(
        "root", nargs="?", default=DEFAULT_CACHE_DIR,
        help=f"store directory (default {DEFAULT_CACHE_DIR})",
    )
    store_verify.add_argument(
        "--repair", action="store_true",
        help="quarantine damaged entries instead of only reporting them",
    )
    store_verify.add_argument("--json", action="store_true", help="print the report as JSON")
    store_verify.set_defaults(handler=_cmd_store_verify)

    store_gc = store_sub.add_parser(
        "gc", help="sweep orphan payloads, temp files, and stale leases"
    )
    store_gc.add_argument(
        "root", nargs="?", default=DEFAULT_CACHE_DIR,
        help=f"store directory (default {DEFAULT_CACHE_DIR})",
    )
    store_gc.add_argument("--json", action="store_true", help="print the sweep counts as JSON")
    store_gc.set_defaults(handler=_cmd_store_gc)

    store_migrate = store_sub.add_parser(
        "migrate", help="convert a legacy per-file result cache in place"
    )
    store_migrate.add_argument(
        "root", nargs="?", default=DEFAULT_CACHE_DIR,
        help=f"cache directory to convert (default {DEFAULT_CACHE_DIR})",
    )
    store_migrate.add_argument(
        "--lease-ttl", type=float, default=None, metavar="S",
        help="point-lease lifetime of the migrated store (default 600)",
    )
    store_migrate.add_argument("--json", action="store_true", help="print the report as JSON")
    store_migrate.set_defaults(handler=_cmd_store_migrate)

    version = subparsers.add_parser("version", help="print the library version")
    version.set_defaults(handler=_cmd_version)
    return parser


def _add_telemetry_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--telemetry", metavar="OUT.json", default=None,
        help="capture a telemetry snapshot of this run and write it (with a manifest) as JSON",
    )


def _add_obs_dir_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--obs-dir", metavar="DIR", default=None,
        help=f"obs directory (default ${OBS_DIR_ENV} or {DEFAULT_OBS_DIR})",
    )


def _add_obs_flags(subparser: argparse.ArgumentParser) -> None:
    _add_obs_dir_flag(subparser)
    subparser.add_argument(
        "--no-obs", action="store_true",
        help="skip run-ledger recording and the live heartbeat for this invocation",
    )
    subparser.add_argument(
        "--audit", action="store_true",
        help="record a determinism fingerprint stream for this run next to the ledger "
        "(compare runs with `repro obs audit`)",
    )


_FIGURE_IDS = ("2a", "3a", "3b", "3c", "3d")


def _load_spec(path: str) -> CampaignSpec:
    spec_path = Path(path)
    if not spec_path.exists():
        raise ReproError(f"campaign spec {path!r} does not exist")
    try:
        return CampaignSpec.from_json(spec_path)
    except ReproError:
        raise
    except (ValueError, TypeError) as exc:
        raise ReproError(f"campaign spec {path!r} is not a valid spec: {exc}") from exc


def _open_cache(
    cache_dir: Optional[str],
    disabled: bool = False,
    backend: str = "auto",
    lease_ttl_s: Optional[float] = None,
) -> Optional[ResultCache]:
    if disabled:
        return None
    return ResultCache(
        cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR,
        backend=backend,
        lease_ttl_s=lease_ttl_s,
    )


def _command_label(args: argparse.Namespace) -> str:
    """Dotted span label of a parsed command, e.g. ``mc.run``."""
    parts = [args.command]
    for attr in ("campaign_command", "mc_command", "obs_command"):
        sub = getattr(args, attr, None)
        if sub:
            parts.append(sub)
    return ".".join(parts)


def _snapshot_payload(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """A telemetry snapshot plus the reproducibility manifest, ready to write."""
    return {**snapshot, "manifest": build_manifest(telemetry_snapshot=snapshot)}


def _peek_spec_name(spec_path: Optional[str]) -> Optional[str]:
    """The spec's name without full validation (for heartbeat/ledger labels)."""
    if not spec_path:
        return None
    try:
        payload = json.loads(Path(spec_path).read_text(encoding="utf-8"))
        name = payload.get("name")
        return str(name) if name else None
    except (OSError, ValueError, AttributeError):
        return None


def _run_recorded(
    args: argparse.Namespace,
    label: str,
    command: str,
    spec_path: Optional[str],
    dispatch: Callable[[], int],
) -> Tuple[int, Dict[str, Any]]:
    """Run one CLI invocation under live telemetry, heartbeat, and the ledger.

    Telemetry is always captured (the snapshot is returned either way); the
    run ledger and the live heartbeat are skipped under ``--no-obs``.  Ledger
    recording is silent on stdout — failures to persist degrade to debug
    logging, never to breaking the command.  Errors are recorded too: the
    handler's exception propagates, but the ledger keeps the partial snapshot
    with status ``error`` and the heartbeat terminates as ``failed``.

    ``--audit`` additionally runs the dispatch under a live
    :class:`~repro.obs.AuditTrail`; the fingerprint stream is persisted under
    ``<obs dir>/audit/<run id>.jsonl`` even when the run errors or is
    interrupted, so a divergence can be localized post-mortem.
    """
    ledger: Optional[RunLedger] = None
    heartbeat: Optional[HeartbeatWriter] = None
    run_id = new_run_id()
    spec_name = _peek_spec_name(spec_path)
    trail: Optional[AuditTrail] = AuditTrail() if getattr(args, "audit", False) else None
    if trail is not None and getattr(args, "no_obs", False):
        print("note: --audit streams into the run ledger; ignored with --no-obs")
        trail = None
    if not getattr(args, "no_obs", False):
        try:
            ledger = RunLedger(getattr(args, "obs_dir", None))
            heartbeat = HeartbeatWriter(
                ledger.live_dir / f"{run_id}.json",
                run_id=run_id,
                label=label,
                spec_name=spec_name,
            )
        except OSError as exc:
            logger.debug("obs recording unavailable: %s", exc)
            ledger = heartbeat = None
    telemetry = Telemetry()
    started = time.time()
    code: Optional[int] = None
    interrupted = False
    try:
        with contextlib.ExitStack() as scopes:
            scopes.enter_context(telemetry_capture(telemetry))
            scopes.enter_context(telemetry.span(f"cli.{label}"))
            if trail is not None:
                scopes.enter_context(audit_capture(trail))
            if heartbeat is not None:
                scopes.enter_context(heartbeat_scope(heartbeat))
            code = dispatch()
    except CampaignInterrupted:
        # A drained SIGINT/SIGTERM stop: completed work is cached, the run is
        # resumable — record that distinctly from a genuine failure.
        interrupted = True
        raise
    finally:
        snapshot = telemetry.snapshot()
        if interrupted:
            status = "interrupted"
        else:
            status = "ok" if code == 0 else "error"
        if heartbeat is not None:
            if interrupted:
                heartbeat.finish("interrupted")
            else:
                heartbeat.finish("done" if status == "ok" else "failed")
        if trail is not None and ledger is not None:
            try:
                path = write_audit_stream(
                    ledger.audit_path(run_id), trail.records(), run_id=run_id, label=label
                )
                print(f"wrote audit stream ({len(trail.records())} records) to {path}")
            except OSError as exc:
                logger.debug("audit stream recording failed: %s", exc)
        if ledger is not None:
            try:
                entry = ledger.record(
                    command,
                    snapshot,
                    run_id=run_id,
                    label=label,
                    spec_name=spec_name,
                    status=status,
                    started_unix_s=started,
                    manifest=build_manifest(telemetry_snapshot=snapshot),
                )
                logger.debug("recorded run %s in %s", entry.run_id, ledger.root)
            except OSError as exc:
                logger.debug("obs ledger recording failed: %s", exc)
    return code, snapshot


def _run_with_telemetry(args: argparse.Namespace, argv: Optional[List[str]] = None) -> int:
    """Dispatch a parsed command; recordable ones go through the run ledger.

    Commands carrying the ``--telemetry`` flag (``campaign run``, ``mc run``,
    ``mc map``) always run under live telemetry now that every invocation is
    ledger-recorded; the flag still controls whether the snapshot is *also*
    written to an explicit path.  ``profile`` does its own recording; every
    other command dispatches directly.
    """
    if not hasattr(args, "telemetry"):
        return args.handler(args)
    label = _command_label(args)
    command = "repro " + " ".join(str(arg) for arg in argv) if argv else "repro " + label.replace(".", " ")
    code, snapshot = _run_recorded(
        args, label, command, getattr(args, "spec", None), lambda: args.handler(args)
    )
    if args.telemetry:
        write_snapshot(args.telemetry, _snapshot_payload(snapshot))
        print(f"wrote telemetry snapshot to {args.telemetry}")
    return code


# ----------------------------------------------------------------------
# subcommand handlers
# ----------------------------------------------------------------------


def _cmd_run_fig(args: argparse.Namespace) -> int:
    registry = _figure_registry()
    experiment = registry[args.figure]
    kwargs: Dict[str, Any] = {}
    if args.figure in CAMPAIGN_FIGURES:
        kwargs["workers"] = args.workers
        if args.cache:
            kwargs["cache"] = ResultCache(args.cache)
    elif args.workers or args.cache:
        print(f"note: --workers/--cache only apply to figures {'/'.join(CAMPAIGN_FIGURES)}; ignored")
    result = experiment(**kwargs)
    print(result.to_table())
    if args.chart and result.rows:
        numeric = [
            column
            for column in result.columns[1:]
            if isinstance(result.rows[0].get(column), (int, float))
            and not isinstance(result.rows[0].get(column), bool)
        ]
        if numeric:
            print()
            print(result.to_chart(result.columns[0], numeric[0]))
    if args.save:
        path = result.save(args.save)
        print(f"saved {result.name} exports next to {path}")
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    if args.shard_size is not None:
        if args.shard_size < 0:
            raise ReproError("--shard-size must be non-negative (0 = all at once)")
        spec.shard_size = args.shard_size
    if args.retries < 0:
        raise ReproError("--retries must be non-negative (0 disables retrying)")
    retry = (
        RetryPolicy(max_attempts=args.retries + 1, base_delay_s=args.retry_delay)
        if args.retries
        else None
    )
    if args.inject_faults:
        FaultPlan.parse(args.inject_faults)  # reject a bad spec before any work runs
    if args.lease_ttl is not None and args.lease_ttl <= 0:
        raise ReproError("--lease-ttl must be positive")
    cache = _open_cache(
        args.cache,
        disabled=args.no_cache,
        backend="store" if args.store else "auto",
        lease_ttl_s=args.lease_ttl,
    )
    runner = CampaignRunner(
        spec,
        cache=cache,
        workers=args.workers,
        timeout_s=args.timeout,
        chunksize=args.chunksize,
        retry=retry,
        max_crashes=args.max_crashes,
    )
    # The harness reads $REPRO_FAULTS so pool workers inherit the schedule;
    # scope the flag's value to this run and restore whatever was there.
    previous_faults = os.environ.get(FAULTS_ENV)
    if args.inject_faults:
        os.environ[FAULTS_ENV] = args.inject_faults
    try:
        report = runner.run()
    finally:
        if args.inject_faults:
            if previous_faults is None:
                os.environ.pop(FAULTS_ENV, None)
            else:
                os.environ[FAULTS_ENV] = previous_faults
    summary = summarise(report)
    result = to_experiment_result(spec, report) if not report.failed_records else None

    if args.json:
        manifest = build_manifest(extra={"kind": "campaign", "spec": spec.name, "experiment": spec.experiment})
        print(
            json.dumps(
                {
                    "summary": summary,
                    "report": report.to_dict(),
                    "resilience": runner.resilience,
                    "manifest": manifest,
                },
                indent=2,
                default=str,
            )
        )
    else:
        print(report.summary())
        if any(runner.resilience.values()):
            print(
                "resilience: "
                + " ".join(f"{key}={value}" for key, value in runner.resilience.items() if value)
            )
        if result is not None and result.rows:
            print()
            print(result.to_table())
        for record in report.failed_records:
            print(f"FAILED point {record.index} ({record.status}): {record.error}")
        rate = summary["success_rate"]
        print()
        print(
            f"success rate {rate:.0%}"
            + (
                f", min pulses to flip {summary['min_pulses_to_flip']}"
                if summary["min_pulses_to_flip"] is not None
                else ""
            )
        )
    if args.save and result is not None:
        path = result.save(args.save)
        print(f"saved campaign exports next to {path}")
    return 1 if report.failed_records else 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    if args.follow:
        return _follow_spec_heartbeat(args, spec)
    if args.shard_size is not None:
        if args.shard_size < 0:
            raise ReproError("--shard-size must be non-negative (0 = no sharding)")
        spec.shard_size = args.shard_size
    cache = _open_cache(args.cache)
    runner = CampaignRunner(spec, cache=cache)
    status = runner.status()
    print(
        f"campaign {status['spec_name']!r}: {status['cached']}/{status['total']} points cached, "
        f"{status['missing']} to compute"
    )
    if cache is not None:
        corrupt = cache.stats().get("corrupt", 0)
        if corrupt:
            print(f"  quarantined cache entries: {corrupt} (*.corrupt files under {cache.root})")
    state = _latest_spec_heartbeat(args, spec.name)
    if state is not None:
        parts = [
            f"{key}={int(state[key])}"
            for key in ("retried", "crashed", "quarantined")
            if state.get(key)
        ]
        if parts or state.get("status") == "interrupted":
            line = f"  last run [{state.get('run_id', '?')}] {state.get('status', '?')}"
            if parts:
                line += ": " + " ".join(parts)
            if state.get("status") == "interrupted":
                line += " (completed points are cached; rerun to resume)"
            print(line)
    if "shards" in status:
        print(f"  shards ({status['shard_size']} points each):")
        shards = status["shards"]
        for shard in shards[:20]:
            marker = "complete" if shard["cached"] == shard["total"] else "partial"
            print(
                f"    shard {shard['shard']:>4}: {shard['cached']}/{shard['total']} cached ({marker})"
            )
        if len(shards) > 20:
            print(f"    ... and {len(shards) - 20} more shards")
    for label in status["missing_points"][:10]:
        print(f"  missing: {label}")
    if status["missing"] > 10:
        print(f"  ... and {status['missing'] - 10} more")
    return 0


def _latest_spec_heartbeat(args: argparse.Namespace, spec_name: str) -> Optional[Dict[str, Any]]:
    """The most recent heartbeat of this spec under the obs live dir, if any."""
    try:
        live_dir = RunLedger(getattr(args, "obs_dir", None)).live_dir
    except (OSError, ReproError):
        return None
    if not live_dir.is_dir():
        return None
    best: Optional[Dict[str, Any]] = None
    for candidate in live_dir.glob("*.json"):
        state = read_heartbeat(candidate)
        if state is None or state.get("spec_name") != spec_name:
            continue
        if best is None or state.get("started_unix_s", 0.0) > best.get("started_unix_s", 0.0):
            best = state
    return best


def _follow_spec_heartbeat(args: argparse.Namespace, spec: CampaignSpec) -> int:
    """Tail the heartbeat of a run of ``spec`` executing in another process.

    Waits (up to ``--timeout``) for a heartbeat whose ``spec_name`` matches,
    preferring a currently-running one, then prints one progress line per new
    heartbeat sequence number until the run terminates.
    """
    live_dir = RunLedger(getattr(args, "obs_dir", None)).live_dir
    path: Optional[Path] = None
    deadline = time.monotonic() + args.timeout
    while time.monotonic() < deadline:
        candidates = []
        if live_dir.is_dir():
            for candidate in live_dir.glob("*.json"):
                state = read_heartbeat(candidate)
                if state is not None and state.get("spec_name") == spec.name:
                    candidates.append(
                        (state.get("status") == "running", state.get("started_unix_s", 0.0), candidate)
                    )
        if candidates:
            # Prefer a currently-running heartbeat; otherwise show the most
            # recent finished one (its terminal state prints once).
            running = [entry for entry in candidates if entry[0]]
            path = max(running or candidates, key=lambda entry: entry[1])[2]
            break
        time.sleep(args.poll)
    if path is None:
        print(f"no live run of spec {spec.name!r} found under {live_dir}")
        return 1
    for state in follow_heartbeat(path, poll_s=args.poll, timeout_s=args.timeout):
        print(render_heartbeat(state), flush=True)
    return 0


def _load_montecarlo_spec(path: str) -> CampaignSpec:
    spec = _load_spec(path)
    if spec.kind != "montecarlo":
        raise ReproError(
            f"spec {path!r} has kind={spec.kind!r}; `repro mc` needs a kind='montecarlo' spec"
        )
    return spec


def _export_cells_npz(result, path: str) -> None:
    """Dump one population's per-cell draws and outcomes as compressed npz.

    Sampled parameters are stored under ``param.<path>`` (per-array attack
    environment draws under ``env.<path>``); outcome arrays keep their result
    field names.  Full-array populations additionally carry the victim
    coordinates, the per-array validity mask and ``n_arrays``, so the flat
    lane arrays can be reshaped to ``(n_arrays, victims)`` offline.
    """
    import numpy as np

    from ..montecarlo import FullArrayMonteCarloResult

    arrays = {
        "flipped": result.flipped,
        "pulses": result.pulses,
        "stress_time_s": result.stress_time_s,
        "wall_clock_s": result.wall_clock_s,
        "final_x": result.final_x,
        "victim_temperature_k": result.victim_temperature_k,
        "valid": result.valid,
    }
    if result.weights is not None:
        arrays["weights"] = result.weights
    if result.draw is not None:
        for param_path, values in result.draw.values.items():
            arrays[f"param.{param_path}"] = values
    if isinstance(result, FullArrayMonteCarloResult):
        arrays["victims"] = np.asarray(result.victims, dtype=np.int64)
        arrays["array_valid"] = result.array_valid
        arrays["n_arrays"] = np.asarray(result.n_arrays, dtype=np.int64)
        if result.environment_draw is not None:
            for env_path, values in result.environment_draw.values.items():
                arrays[f"env.{env_path}"] = values
    np.savez_compressed(path, **arrays)


def _cmd_mc_run(args: argparse.Namespace) -> int:
    from ..config import AttackConfig, SimulationConfig
    from ..montecarlo import MonteCarloConfig, MonteCarloEngine

    spec = _load_montecarlo_spec(args.spec)
    montecarlo = MonteCarloConfig.from_dict(spec.montecarlo)
    if args.samples is not None and montecarlo.adaptive is not None:
        # Adaptive stopping ignores n_samples; an explicit --samples N asks
        # for a fixed-size run, so honour it rather than silently running to
        # the adaptive ceiling.
        print(
            f"note: --samples {args.samples} requests a fixed-size run; "
            "disabling the spec's adaptive stopping rule"
        )
        montecarlo.adaptive = None
    if args.show_distributions:
        from ..experiments.calibration import distribution_provenance_report

        report = distribution_provenance_report(montecarlo.distributions or None)
        print(report.to_table())
        placeholders = sum(1 for row in report.rows if row["source"] == "placeholder")
        print()
        print(
            f"{len(report.rows)} distribution(s); {placeholders} placeholder sigma(s) "
            "pending literature calibration (see repro.experiments.calibration)"
        )
        return 0
    if args.samples is not None:
        montecarlo.n_samples = args.samples
    if args.seed is not None:
        montecarlo.seed = args.seed
    if args.mode is not None:
        montecarlo.mode = args.mode
    engine = MonteCarloEngine(
        montecarlo,
        simulation=SimulationConfig.from_dict(spec.simulation),
        attack=AttackConfig.from_dict(spec.attack),
    )
    result = engine.run(vectorized=not args.scalar)
    summary = result.summary()

    if args.json:
        print(
            json.dumps(
                {
                    "summary": summary,
                    "conditions": result.conditions.to_dict(),
                    "manifest": engine.manifest(),
                },
                indent=2,
            )
        )
    else:
        table = result.to_experiment_result(max_rows=args.rows)
        print(table.to_table())
        if result.n_samples > args.rows:
            print(f"... ({result.n_samples - args.rows} more cells)")
        print()
        print(
            f"population {spec.name!r}: {summary['flipped']}/{summary['valid']} cells flipped "
            f"(flip probability {summary['flip_probability']:.3f}, "
            f"{summary['failed']} failed) via the {summary['engine']} engine "
            f"in {summary['duration_s']:.2f}s"
        )
        print(
            f"{summary['ci_method']} interval: [{summary['ci_low']:.4f}, {summary['ci_high']:.4f}] "
            f"(half-width {summary['ci_half_width']:.4f})"
        )
        if "adaptive" in summary:
            adaptive = summary["adaptive"]
            print(
                f"adaptive sampling: {adaptive['n_drawn']} samples in {adaptive['batches']} "
                f"batch(es), stopped on {adaptive['stop_reason']}"
            )
        if "effective_sample_size" in summary:
            print(f"importance sampling: effective sample size {summary['effective_sample_size']:.1f}")
        if summary["min_pulses_to_flip"] is not None:
            print(
                f"pulses to flip: min {summary['min_pulses_to_flip']}, "
                f"p50 {summary['p50']:.0f}, p90 {summary['p90']:.0f}, "
                f"geomean {summary['geomean_pulses_to_flip']:.0f}"
            )
    if args.export_cells:
        _export_cells_npz(result, args.export_cells)
        print(f"exported per-cell arrays to {args.export_cells}")
    if args.save:
        path = result.to_experiment_result(max_rows=None).save(args.save)
        print(f"saved montecarlo exports next to {path}")
    return 0


def _cmd_mc_map(args: argparse.Namespace) -> int:
    from ..montecarlo import MapAxis, flip_probability_map, refine_flip_probability_map

    spec = _load_montecarlo_spec(args.spec)
    if spec.mode != "grid" or len(spec.axes) != 2:
        raise ReproError("`repro mc map` needs a grid spec with exactly two enumerated axes")
    x_axis, y_axis = spec.axes
    if args.adaptive:
        if args.workers or args.cache:
            print("note: --workers/--cache apply to the fixed-n map path; ignored with --adaptive")
        mc_map = refine_flip_probability_map(
            MapAxis(path=x_axis.path, values=list(x_axis.values)),
            MapAxis(path=y_axis.path, values=list(y_axis.values)),
            simulation=spec.simulation,
            attack=spec.attack,
            montecarlo=spec.montecarlo,
            name=spec.name,
            target_half_width=args.target_ci,
            budget=args.budget,
            threshold=args.threshold,
            batch_size=args.batch_size,
            point_n_max=args.point_max,
        )
        mc_map.result.metadata.setdefault(
            "manifest", build_manifest(extra={"kind": "mc_map", "spec": spec.name, "adaptive": True})
        )
        if args.json:
            print(mc_map.result.to_json())
        else:
            print(mc_map.to_heatmap())
            print()
            print(mc_map.allocation_heatmap())
            print()
            print(mc_map.result.to_table())
            print()
            print(
                f"map {spec.name!r}: target CI half-width {mc_map.target_half_width:g}, "
                f"{int(mc_map.converged.sum())}/{mc_map.converged.size} points converged, "
                f"{mc_map.total_samples} samples "
                f"({mc_map.solve_ratio:.1f}x fewer than the fixed-n equivalent)"
            )
    else:
        mc_map = flip_probability_map(
            MapAxis(path=x_axis.path, values=list(x_axis.values)),
            MapAxis(path=y_axis.path, values=list(y_axis.values)),
            simulation=spec.simulation,
            attack=spec.attack,
            montecarlo=spec.montecarlo,
            name=spec.name,
            workers=args.workers,
            cache=ResultCache(args.cache) if args.cache else None,
        )
        mc_map.result.metadata.setdefault(
            "manifest", build_manifest(extra={"kind": "mc_map", "spec": spec.name, "adaptive": False})
        )
        if args.json:
            print(mc_map.result.to_json())
        else:
            print(mc_map.to_heatmap())
            print()
            print(mc_map.result.to_table())
            print()
            print(
                f"map {spec.name!r}: {mc_map.n_samples} cells/point, "
                f"mean bit-error rate {mc_map.bit_error_rate():.3f}"
            )
    if args.save:
        path = mc_map.result.save(args.save)
        print(f"saved map exports next to {path}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    cmd = list(args.cmd)
    if cmd and cmd[0] == "--":
        # argparse.REMAINDER keeps an explicit separator; drop it.
        cmd = cmd[1:]
    if not cmd:
        raise ReproError("`repro profile` needs a command to run, e.g. `repro profile mc run SPEC.json`")
    if cmd[0] == "profile":
        raise ReproError("`repro profile` cannot profile itself")
    inner = build_parser().parse_args(cmd)
    if getattr(inner, "telemetry", None):
        print("note: --telemetry is redundant under `repro profile`; ignored")
        inner.telemetry = None
    # Recording happens here, at the invocation level; the inner handler is
    # dispatched directly so a profiled campaign is not double-recorded.
    code, snapshot = _run_recorded(
        args,
        _command_label(inner),
        "repro profile " + " ".join(cmd),
        getattr(inner, "spec", None),
        lambda: inner.handler(inner),
    )
    print()
    print(render_report(snapshot, sort=args.sort, top=args.top))
    if args.output:
        write_snapshot(args.output, _snapshot_payload(snapshot))
        print(f"wrote telemetry snapshot to {args.output}")
    return code


# ----------------------------------------------------------------------
# obs subcommands
# ----------------------------------------------------------------------


def _open_ledger(args: argparse.Namespace) -> RunLedger:
    return RunLedger(getattr(args, "obs_dir", None))


def _cmd_obs_runs(args: argparse.Namespace) -> int:
    ledger = _open_ledger(args)
    entries = ledger.entries()
    if args.status:
        entries = [entry for entry in entries if entry.status == args.status]
    if args.json:
        shown = entries[-args.limit:] if args.limit and args.limit > 0 else entries
        print(json.dumps([entry.to_dict() for entry in shown], indent=2, default=str))
    else:
        print(render_runs_table(entries, limit=args.limit))
    return 0


def _cmd_obs_show(args: argparse.Namespace) -> int:
    ledger = _open_ledger(args)
    payload = ledger.load_snapshot(args.run)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
        return 0
    print(
        f"run {payload.get('run_id', args.run)}: {payload.get('command', '?')} "
        f"[{payload.get('status', '?')}] in {float(payload.get('duration_s', 0.0)):.2f}s"
    )
    resilience = resilience_counts(payload)
    if any(resilience.values()):
        print(
            "resilience: "
            + " ".join(f"{key}={value}" for key, value in resilience.items() if value)
        )
    print()
    print(render_report(payload))
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    ledger = _open_ledger(args)
    entry_a = ledger.resolve(args.run_a)
    entry_b = ledger.resolve(args.run_b)
    diff = diff_snapshots(ledger.load_snapshot(entry_a.run_id), ledger.load_snapshot(entry_b.run_id))
    if args.json:
        print(json.dumps({"run_a": entry_a.run_id, "run_b": entry_b.run_id, "diff": diff},
                         indent=2, default=str))
    else:
        print(render_diff(diff, run_a=entry_a.run_id, run_b=entry_b.run_id))
    return 0


def _read_run_audit(ledger: RunLedger, ref: str) -> Tuple[str, List[Dict[str, Any]]]:
    """Resolve one run reference and read its persisted fingerprint stream."""
    entry = ledger.resolve(ref)
    path = ledger.audit_path(entry.run_id)
    if not path.exists():
        raise ReproError(
            f"run {entry.run_id} has no audit stream under {ledger.audit_dir} "
            "(rerun the command with --audit to record one)"
        )
    _header, records = read_audit_stream(path)
    return entry.run_id, records


def _audit_divergence_context(
    report: Dict[str, Any], cache_a: Optional[str], cache_b: Optional[str]
) -> None:
    """Attach max-abs-diff context to a divergent ``campaign.point`` record.

    Only possible when both runs' cached payloads are still recoverable: the
    divergent record's ``meta.key`` is the campaign cache key, so the two
    payloads are loaded from their respective caches and walked for the
    largest numeric difference.  Best-effort — any missing piece just leaves
    the report without context.
    """
    first = report.get("first_divergence")
    if not first or first.get("reason") != "fingerprint" or not (cache_a and cache_b):
        return
    if first.get("stage") != "campaign.point":
        return
    key = ((first.get("a") or {}).get("meta") or {}).get("key")
    if not key:
        return
    try:
        payload_a = ResultCache(cache_a).get(key)
        payload_b = ResultCache(cache_b).get(key)
    except ReproError:
        return
    if payload_a is None or payload_b is None:
        return
    context = payload_max_abs_diff(strip_volatile(payload_a), strip_volatile(payload_b))
    if context is not None:
        report["context"] = {"max_abs_diff": context[0], "path": context[1]}


def _cmd_obs_audit(args: argparse.Namespace) -> int:
    ledger = _open_ledger(args)
    run_a, records_a = _read_run_audit(ledger, args.run_a)
    if args.export:
        path = write_audit_stream(args.export, records_a, run_id=run_a)
        print(f"exported audit stream of {run_a} ({len(records_a)} records) to {path}")
        if not args.run_b and not args.check:
            return 0
    if args.run_b and args.check:
        raise ReproError("give either RUN_B or --check GOLDEN.jsonl, not both")
    if args.check:
        name_b = args.check
        _header, records_b = read_audit_stream(args.check)
    elif args.run_b:
        name_b, records_b = _read_run_audit(ledger, args.run_b)
    else:
        # Single-run mode: summarise the stream per stage.
        stages: Dict[str, int] = {}
        for record in records_a:
            stages[record.get("stage", "?")] = stages.get(record.get("stage", "?"), 0) + 1
        if args.json:
            print(json.dumps({"run": run_a, "records": len(records_a), "stages": stages},
                             indent=2, default=str))
        else:
            print(f"run {run_a}: {len(records_a)} audit records")
            for stage in sorted(stages):
                print(f"  {stage:<24} {stages[stage]:>6}")
        return 0
    report = diff_audit_streams(records_a, records_b)
    _audit_divergence_context(report, args.cache_a, args.cache_b)
    if args.json:
        print(json.dumps({"run_a": run_a, "run_b": name_b, **report}, indent=2, default=str))
    else:
        print(render_audit_diff(report, a_name=run_a, b_name=name_b))
    return 0 if report["identical"] else 1


def _cmd_obs_top(args: argparse.Namespace) -> int:
    ledger = _open_ledger(args)
    live_dir = ledger.live_dir
    if not live_dir.is_dir():
        raise ReproError(f"no live heartbeats under {live_dir}")
    paths = sorted(live_dir.glob("*.json"))
    if not paths:
        raise ReproError(f"no live heartbeats under {live_dir}")
    if args.run == "latest":
        path = max(paths, key=lambda p: (read_heartbeat(p) or {}).get("updated_unix_s", 0.0))
    else:
        matches = [p for p in paths if p.stem == args.run] or [
            p for p in paths if p.stem.startswith(args.run)
        ]
        if not matches:
            raise ReproError(f"no heartbeat matches {args.run!r} under {live_dir}")
        if len(matches) > 1:
            raise ReproError(
                f"heartbeat reference {args.run!r} is ambiguous: "
                f"matches {sorted(p.stem for p in matches)[:5]}"
            )
        path = matches[0]
    if args.once:
        state = read_heartbeat(path)
        if state is None:
            raise ReproError(f"heartbeat {path} is unreadable")
        print(render_heartbeat(state))
        return 0
    for state in follow_heartbeat(path, poll_s=args.poll, timeout_s=args.timeout):
        print(render_heartbeat(state), flush=True)
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    ledger = _open_ledger(args)
    text = render_openmetrics(ledger.load_snapshot(args.run))
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        print(f"wrote OpenMetrics exposition to {path}")
    else:
        print(text, end="")
    return 0


def _cmd_obs_check_bench(args: argparse.Namespace) -> int:
    bench_dir = Path(args.bench_dir)
    baselines_path = Path(args.baselines) if args.baselines else bench_dir / BASELINES_FILENAME
    baselines = load_baselines(baselines_path)
    records = load_bench_records(bench_dir)
    results = check_bench(records, baselines)
    passed = gate_passed(results)
    if args.json:
        print(json.dumps({"passed": passed, "checks": [r.to_dict() for r in results]},
                         indent=2, default=str))
    else:
        print(render_check_report(results))
        print()
        print("bench gate: PASS" if passed else "bench gate: FAIL")
    return 0 if passed else 1


# ----------------------------------------------------------------------
# store subcommands
# ----------------------------------------------------------------------


def _open_store(root: str):
    from ..store import ResultStore, is_store_dir

    root_path = Path(root)
    if not is_store_dir(root_path):
        raise ReproError(
            f"{root} is not a shared result store (no index.sqlite); "
            "convert a legacy cache with `repro store migrate`"
        )
    return ResultStore(root_path)


def _cmd_store_verify(args: argparse.Namespace) -> int:
    store = _open_store(args.root)
    try:
        report = store.verify(repair=args.repair)
    finally:
        store.close()
    if args.json:
        print(json.dumps(report, indent=2, default=str))
    else:
        print(
            f"store {report['root']}: {report['ok']}/{report['entries']} entries verified, "
            f"{report['checksum_failures']} checksum failure(s), "
            f"{report['missing_payloads']} missing payload(s), "
            f"{report['orphan_payloads']} orphan payload(s), "
            f"{report['quarantined']} quarantined"
        )
        leases = report["leases"]
        if leases["active"] or leases["stale"]:
            print(f"  leases: {leases['active']} active, {leases['stale']} stale")
        for key in report["bad_keys"][:10]:
            print(f"  damaged: {key}" + (" (quarantined)" if args.repair else ""))
        if len(report["bad_keys"]) > 10:
            print(f"  ... and {len(report['bad_keys']) - 10} more")
        print("store verify: CLEAN" if report["clean"] else "store verify: DAMAGED")
    return 0 if report["clean"] else 1


def _cmd_store_gc(args: argparse.Namespace) -> int:
    store = _open_store(args.root)
    try:
        swept = store.gc()
    finally:
        store.close()
    if args.json:
        print(json.dumps({"root": args.root, **swept}, indent=2))
    else:
        print(
            f"store {args.root}: swept {swept['orphan_payloads']} orphan payload(s), "
            f"{swept['tmp_files']} temp file(s), {swept['stale_leases']} stale lease(s)"
        )
    return 0


def _cmd_store_migrate(args: argparse.Namespace) -> int:
    from ..store import DEFAULT_LEASE_TTL_S, migrate_legacy_cache

    if args.lease_ttl is not None and args.lease_ttl <= 0:
        raise ReproError("--lease-ttl must be positive")
    report = migrate_legacy_cache(
        args.root,
        lease_ttl_s=args.lease_ttl if args.lease_ttl is not None else DEFAULT_LEASE_TTL_S,
    )
    if args.json:
        print(json.dumps(report, indent=2, default=str))
    else:
        print(
            f"migrated {report['root']}: {report['migrated']} legacy entries converted, "
            f"{report['quarantined']} quarantined, {report['entries']} entries in the store"
        )
    return 0


def _cmd_version(args: argparse.Namespace) -> int:
    from .. import __version__

    print(__version__)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro`` and ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _run_with_telemetry(args, list(argv) if argv is not None else sys.argv[1:])
    except CampaignInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return 130
    except KeyboardInterrupt:
        # Second signal (or an interrupt outside a graceful scope): the
        # classic 128+SIGINT exit without a traceback.
        print("interrupted", file=sys.stderr)
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); not an error of ours.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())

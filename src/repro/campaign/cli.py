"""`python -m repro` / `repro` — the unified reproduction command line.

Subcommands::

    repro run-fig {2a,3a,3b,3c,3d} [--save DIR] [--chart] [--workers N] [--cache DIR]
    repro campaign run SPEC.json [--workers N] [--cache DIR] [--no-cache]
                                 [--timeout S] [--chunksize N] [--shard-size N]
                                 [--save DIR] [--json]
    repro campaign status SPEC.json [--cache DIR]
    repro mc run SPEC.json [--samples N] [--seed N] [--mode anchored|full_array]
                           [--scalar] [--rows N] [--export-cells OUT.npz]
                           [--show-distributions] [--save DIR] [--json]
    repro mc map SPEC.json [--workers N] [--cache DIR] [--save DIR] [--json]
                           [--adaptive] [--target-ci H] [--budget N]
                           [--threshold P] [--batch-size N] [--point-max N]
    repro profile [--output OUT.json] CMD...
    repro version

``run-fig`` regenerates one paper figure and prints its table (figures 3a-3d
execute through the campaign engine and accept ``--workers``/``--cache``);
``campaign run`` executes an arbitrary sweep spec through the worker pool
with the result cache (``--shard-size`` streams very large sweeps through
the cache in bounded-memory shards), and ``campaign status`` reports how
much of a spec is already answered by the cache without computing anything.
``mc run`` evaluates one Monte-Carlo cell population from a
``kind="montecarlo"`` spec (``--export-cells`` dumps the per-cell sampled
parameters and outcomes as npz for offline analysis; ``--show-distributions``
prints the provenance of the spec's variability sigmas instead of running);
``mc map`` sweeps a 2-D parameter plane of populations into a
flip-probability map — fixed-n through the campaign runner, or with
``--adaptive`` through CI-driven refinement that spends a global sample
budget where the interval still straddles the flip boundary.

``profile`` runs any other subcommand with telemetry enabled and prints a
flame-style span table plus counter/histogram report afterwards
(``--output`` also writes the raw snapshot and a reproducibility manifest
as JSON); ``campaign run``, ``mc run`` and ``mc map`` additionally accept
``--telemetry OUT.json`` to capture the same snapshot without the report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from ..errors import ReproError
from ..obs import Telemetry, build_manifest, render_report, telemetry_capture, write_snapshot
from .aggregate import summarise, to_experiment_result
from .cache import ResultCache
from .runner import CampaignRunner
from .spec import CampaignSpec

#: Default on-disk cache used by ``campaign run`` unless --no-cache is given.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Figures 3a-3d run through the campaign engine and accept workers/cache.
CAMPAIGN_FIGURES = ("3a", "3b", "3c", "3d")


def _figure_registry() -> Dict[str, Callable[..., Any]]:
    """Figure id -> experiment callable, imported lazily to keep startup light."""
    from ..experiments import fig2a_experiment, run_fig3a, run_fig3b, run_fig3c, run_fig3d

    return {
        "2a": fig2a_experiment,
        "3a": run_fig3a,
        "3b": run_fig3b,
        "3c": run_fig3c,
        "3d": run_fig3d,
    }


def build_parser() -> argparse.ArgumentParser:
    """The complete argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NeuroHammer reproduction: regenerate paper figures and run attack campaigns.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    fig = subparsers.add_parser("run-fig", help="regenerate one paper figure")
    fig.add_argument("figure", choices=sorted(_FIGURE_IDS), help="figure to regenerate")
    fig.add_argument("--save", metavar="DIR", help="also write CSV/JSON exports into DIR")
    fig.add_argument("--chart", action="store_true", help="print an ASCII chart next to the table")
    fig.add_argument("--workers", type=int, default=0, help="worker processes (figures 3a/3c only)")
    fig.add_argument("--cache", metavar="DIR", help="result cache directory (figures 3a/3c only)")
    fig.set_defaults(handler=_cmd_run_fig)

    campaign = subparsers.add_parser("campaign", help="run or inspect a sweep campaign")
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    run = campaign_sub.add_parser("run", help="execute a campaign spec through the worker pool")
    run.add_argument("spec", help="path to a CampaignSpec JSON file")
    run.add_argument("--workers", type=int, default=0, help="worker processes (0 = serial)")
    run.add_argument("--cache", metavar="DIR", default=None, help=f"cache directory (default {DEFAULT_CACHE_DIR})")
    run.add_argument("--no-cache", action="store_true", help="disable the result cache entirely")
    run.add_argument("--timeout", type=float, default=None, metavar="S", help="per-job timeout in seconds")
    run.add_argument(
        "--chunksize", type=int, default=1,
        help="jobs handed to a worker at a time (no effect with --timeout: jobs then dispatch singly)",
    )
    run.add_argument(
        "--shard-size", type=int, default=None, metavar="N",
        help="materialise and dispatch N points at a time (overrides the spec; 0 = all at once)",
    )
    run.add_argument("--save", metavar="DIR", help="write the aggregated CSV/JSON exports into DIR")
    run.add_argument("--json", action="store_true", help="print the full report as JSON instead of a table")
    _add_telemetry_flag(run)
    run.set_defaults(handler=_cmd_campaign_run)

    status = campaign_sub.add_parser("status", help="report cache coverage of a spec")
    status.add_argument("spec", help="path to a CampaignSpec JSON file")
    status.add_argument("--cache", metavar="DIR", default=None, help=f"cache directory (default {DEFAULT_CACHE_DIR})")
    status.set_defaults(handler=_cmd_campaign_status)

    mc = subparsers.add_parser("mc", help="Monte-Carlo variability studies")
    mc_sub = mc.add_subparsers(dest="mc_command", required=True)

    mc_run = mc_sub.add_parser("run", help="evaluate one sampled cell population")
    mc_run.add_argument("spec", help="path to a kind='montecarlo' CampaignSpec JSON file")
    mc_run.add_argument("--samples", type=int, default=None, help="override the population size")
    mc_run.add_argument("--seed", type=int, default=None, help="override the population seed")
    mc_run.add_argument(
        "--mode", choices=("anchored", "full_array"), default=None,
        help="override the evaluation mode: anchored per-victim lanes or whole-array re-solves",
    )
    mc_run.add_argument(
        "--scalar", action="store_true",
        help="use the scalar reference engine instead of the vectorized one (anchored mode only)",
    )
    mc_run.add_argument("--rows", type=int, default=16, metavar="N", help="per-cell table rows to print")
    mc_run.add_argument(
        "--export-cells", metavar="OUT.npz", default=None,
        help="dump per-cell sampled parameters and outcome arrays as a compressed npz",
    )
    mc_run.add_argument(
        "--show-distributions", action="store_true",
        help="print the provenance (placeholder vs literature) of the spec's sigmas and exit",
    )
    mc_run.add_argument("--save", metavar="DIR", help="write the population CSV/JSON exports into DIR")
    mc_run.add_argument("--json", action="store_true", help="print the summary as JSON instead of a table")
    _add_telemetry_flag(mc_run)
    mc_run.set_defaults(handler=_cmd_mc_run)

    mc_map = mc_sub.add_parser("map", help="flip-probability map over a 2-D parameter plane")
    mc_map.add_argument("spec", help="path to a kind='montecarlo' grid spec with exactly two axes")
    mc_map.add_argument("--workers", type=int, default=0, help="worker processes (0 = serial)")
    mc_map.add_argument("--cache", metavar="DIR", default=None, help="result cache directory")
    mc_map.add_argument(
        "--adaptive", action="store_true",
        help="CI-driven refinement: allocate samples where the interval straddles the flip boundary",
    )
    mc_map.add_argument(
        "--target-ci", type=float, default=0.02, metavar="H",
        help="target CI half-width per map point (adaptive mode; default 0.02)",
    )
    mc_map.add_argument(
        "--budget", type=int, default=0, metavar="N",
        help="global sample budget across the plane (adaptive mode; 0 = unbounded)",
    )
    mc_map.add_argument(
        "--threshold", type=float, default=0.5, metavar="P",
        help="decision threshold whose straddling points are refined first (default 0.5)",
    )
    mc_map.add_argument(
        "--batch-size", type=int, default=64, metavar="N",
        help="samples per refinement batch (adaptive mode; default 64)",
    )
    mc_map.add_argument(
        "--point-max", type=int, default=16384, metavar="N",
        help="hard per-point sample ceiling (adaptive mode; default 16384)",
    )
    mc_map.add_argument("--save", metavar="DIR", help="write the map CSV/JSON exports into DIR")
    mc_map.add_argument("--json", action="store_true", help="print the per-point records as JSON")
    _add_telemetry_flag(mc_map)
    mc_map.set_defaults(handler=_cmd_mc_map)

    profile = subparsers.add_parser(
        "profile",
        help="run any repro subcommand with telemetry enabled and print a span/metric report",
    )
    profile.add_argument(
        "--output", metavar="OUT.json", default=None,
        help="also write the raw telemetry snapshot plus a reproducibility manifest as JSON",
    )
    profile.add_argument(
        "cmd", nargs=argparse.REMAINDER,
        help="the repro command to profile, e.g. `repro profile mc run SPEC.json`",
    )
    profile.set_defaults(handler=_cmd_profile)

    version = subparsers.add_parser("version", help="print the library version")
    version.set_defaults(handler=_cmd_version)
    return parser


def _add_telemetry_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--telemetry", metavar="OUT.json", default=None,
        help="capture a telemetry snapshot of this run and write it (with a manifest) as JSON",
    )


_FIGURE_IDS = ("2a", "3a", "3b", "3c", "3d")


def _load_spec(path: str) -> CampaignSpec:
    spec_path = Path(path)
    if not spec_path.exists():
        raise ReproError(f"campaign spec {path!r} does not exist")
    try:
        return CampaignSpec.from_json(spec_path)
    except ReproError:
        raise
    except (ValueError, TypeError) as exc:
        raise ReproError(f"campaign spec {path!r} is not a valid spec: {exc}") from exc


def _open_cache(cache_dir: Optional[str], disabled: bool = False) -> Optional[ResultCache]:
    if disabled:
        return None
    return ResultCache(cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR)


def _command_label(args: argparse.Namespace) -> str:
    """Dotted span label of a parsed command, e.g. ``mc.run``."""
    parts = [args.command]
    for attr in ("campaign_command", "mc_command"):
        sub = getattr(args, attr, None)
        if sub:
            parts.append(sub)
    return ".".join(parts)


def _snapshot_payload(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """A telemetry snapshot plus the reproducibility manifest, ready to write."""
    return {**snapshot, "manifest": build_manifest(telemetry_snapshot=snapshot)}


def _run_with_telemetry(args: argparse.Namespace) -> int:
    """Dispatch a parsed command, honouring its ``--telemetry OUT.json`` flag."""
    path = getattr(args, "telemetry", None)
    if path is None:
        return args.handler(args)
    with telemetry_capture(Telemetry()) as tel:
        with tel.span(f"cli.{_command_label(args)}"):
            code = args.handler(args)
        snapshot = tel.snapshot()
    write_snapshot(path, _snapshot_payload(snapshot))
    print(f"wrote telemetry snapshot to {path}")
    return code


# ----------------------------------------------------------------------
# subcommand handlers
# ----------------------------------------------------------------------


def _cmd_run_fig(args: argparse.Namespace) -> int:
    registry = _figure_registry()
    experiment = registry[args.figure]
    kwargs: Dict[str, Any] = {}
    if args.figure in CAMPAIGN_FIGURES:
        kwargs["workers"] = args.workers
        if args.cache:
            kwargs["cache"] = ResultCache(args.cache)
    elif args.workers or args.cache:
        print(f"note: --workers/--cache only apply to figures {'/'.join(CAMPAIGN_FIGURES)}; ignored")
    result = experiment(**kwargs)
    print(result.to_table())
    if args.chart and result.rows:
        numeric = [
            column
            for column in result.columns[1:]
            if isinstance(result.rows[0].get(column), (int, float))
            and not isinstance(result.rows[0].get(column), bool)
        ]
        if numeric:
            print()
            print(result.to_chart(result.columns[0], numeric[0]))
    if args.save:
        path = result.save(args.save)
        print(f"saved {result.name} exports next to {path}")
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    if args.shard_size is not None:
        if args.shard_size < 0:
            raise ReproError("--shard-size must be non-negative (0 = all at once)")
        spec.shard_size = args.shard_size
    cache = _open_cache(args.cache, disabled=args.no_cache)
    runner = CampaignRunner(
        spec,
        cache=cache,
        workers=args.workers,
        timeout_s=args.timeout,
        chunksize=args.chunksize,
    )
    report = runner.run()
    summary = summarise(report)
    result = to_experiment_result(spec, report) if not report.failed_records else None

    if args.json:
        manifest = build_manifest(extra={"kind": "campaign", "spec": spec.name, "experiment": spec.experiment})
        print(
            json.dumps(
                {"summary": summary, "report": report.to_dict(), "manifest": manifest},
                indent=2,
                default=str,
            )
        )
    else:
        print(report.summary())
        if result is not None and result.rows:
            print()
            print(result.to_table())
        for record in report.failed_records:
            print(f"FAILED point {record.index} ({record.status}): {record.error}")
        rate = summary["success_rate"]
        print()
        print(
            f"success rate {rate:.0%}"
            + (
                f", min pulses to flip {summary['min_pulses_to_flip']}"
                if summary["min_pulses_to_flip"] is not None
                else ""
            )
        )
    if args.save and result is not None:
        path = result.save(args.save)
        print(f"saved campaign exports next to {path}")
    return 1 if report.failed_records else 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    cache = _open_cache(args.cache)
    runner = CampaignRunner(spec, cache=cache)
    status = runner.status()
    print(
        f"campaign {status['spec_name']!r}: {status['cached']}/{status['total']} points cached, "
        f"{status['missing']} to compute"
    )
    for label in status["missing_points"][:10]:
        print(f"  missing: {label}")
    if status["missing"] > 10:
        print(f"  ... and {status['missing'] - 10} more")
    return 0


def _load_montecarlo_spec(path: str) -> CampaignSpec:
    spec = _load_spec(path)
    if spec.kind != "montecarlo":
        raise ReproError(
            f"spec {path!r} has kind={spec.kind!r}; `repro mc` needs a kind='montecarlo' spec"
        )
    return spec


def _export_cells_npz(result, path: str) -> None:
    """Dump one population's per-cell draws and outcomes as compressed npz.

    Sampled parameters are stored under ``param.<path>`` (per-array attack
    environment draws under ``env.<path>``); outcome arrays keep their result
    field names.  Full-array populations additionally carry the victim
    coordinates, the per-array validity mask and ``n_arrays``, so the flat
    lane arrays can be reshaped to ``(n_arrays, victims)`` offline.
    """
    import numpy as np

    from ..montecarlo import FullArrayMonteCarloResult

    arrays = {
        "flipped": result.flipped,
        "pulses": result.pulses,
        "stress_time_s": result.stress_time_s,
        "wall_clock_s": result.wall_clock_s,
        "final_x": result.final_x,
        "victim_temperature_k": result.victim_temperature_k,
        "valid": result.valid,
    }
    if result.weights is not None:
        arrays["weights"] = result.weights
    if result.draw is not None:
        for param_path, values in result.draw.values.items():
            arrays[f"param.{param_path}"] = values
    if isinstance(result, FullArrayMonteCarloResult):
        arrays["victims"] = np.asarray(result.victims, dtype=np.int64)
        arrays["array_valid"] = result.array_valid
        arrays["n_arrays"] = np.asarray(result.n_arrays, dtype=np.int64)
        if result.environment_draw is not None:
            for env_path, values in result.environment_draw.values.items():
                arrays[f"env.{env_path}"] = values
    np.savez_compressed(path, **arrays)


def _cmd_mc_run(args: argparse.Namespace) -> int:
    from ..config import AttackConfig, SimulationConfig
    from ..montecarlo import MonteCarloConfig, MonteCarloEngine

    spec = _load_montecarlo_spec(args.spec)
    montecarlo = MonteCarloConfig.from_dict(spec.montecarlo)
    if args.samples is not None and montecarlo.adaptive is not None:
        # Adaptive stopping ignores n_samples; an explicit --samples N asks
        # for a fixed-size run, so honour it rather than silently running to
        # the adaptive ceiling.
        print(
            f"note: --samples {args.samples} requests a fixed-size run; "
            "disabling the spec's adaptive stopping rule"
        )
        montecarlo.adaptive = None
    if args.show_distributions:
        from ..experiments.calibration import distribution_provenance_report

        report = distribution_provenance_report(montecarlo.distributions or None)
        print(report.to_table())
        placeholders = sum(1 for row in report.rows if row["source"] == "placeholder")
        print()
        print(
            f"{len(report.rows)} distribution(s); {placeholders} placeholder sigma(s) "
            "pending literature calibration (see repro.experiments.calibration)"
        )
        return 0
    if args.samples is not None:
        montecarlo.n_samples = args.samples
    if args.seed is not None:
        montecarlo.seed = args.seed
    if args.mode is not None:
        montecarlo.mode = args.mode
    engine = MonteCarloEngine(
        montecarlo,
        simulation=SimulationConfig.from_dict(spec.simulation),
        attack=AttackConfig.from_dict(spec.attack),
    )
    result = engine.run(vectorized=not args.scalar)
    summary = result.summary()

    if args.json:
        print(
            json.dumps(
                {
                    "summary": summary,
                    "conditions": result.conditions.to_dict(),
                    "manifest": engine.manifest(),
                },
                indent=2,
            )
        )
    else:
        table = result.to_experiment_result(max_rows=args.rows)
        print(table.to_table())
        if result.n_samples > args.rows:
            print(f"... ({result.n_samples - args.rows} more cells)")
        print()
        print(
            f"population {spec.name!r}: {summary['flipped']}/{summary['valid']} cells flipped "
            f"(flip probability {summary['flip_probability']:.3f}, "
            f"{summary['failed']} failed) via the {summary['engine']} engine "
            f"in {summary['duration_s']:.2f}s"
        )
        print(
            f"{summary['ci_method']} interval: [{summary['ci_low']:.4f}, {summary['ci_high']:.4f}] "
            f"(half-width {summary['ci_half_width']:.4f})"
        )
        if "adaptive" in summary:
            adaptive = summary["adaptive"]
            print(
                f"adaptive sampling: {adaptive['n_drawn']} samples in {adaptive['batches']} "
                f"batch(es), stopped on {adaptive['stop_reason']}"
            )
        if "effective_sample_size" in summary:
            print(f"importance sampling: effective sample size {summary['effective_sample_size']:.1f}")
        if summary["min_pulses_to_flip"] is not None:
            print(
                f"pulses to flip: min {summary['min_pulses_to_flip']}, "
                f"p50 {summary['p50']:.0f}, p90 {summary['p90']:.0f}, "
                f"geomean {summary['geomean_pulses_to_flip']:.0f}"
            )
    if args.export_cells:
        _export_cells_npz(result, args.export_cells)
        print(f"exported per-cell arrays to {args.export_cells}")
    if args.save:
        path = result.to_experiment_result(max_rows=None).save(args.save)
        print(f"saved montecarlo exports next to {path}")
    return 0


def _cmd_mc_map(args: argparse.Namespace) -> int:
    from ..montecarlo import MapAxis, flip_probability_map, refine_flip_probability_map

    spec = _load_montecarlo_spec(args.spec)
    if spec.mode != "grid" or len(spec.axes) != 2:
        raise ReproError("`repro mc map` needs a grid spec with exactly two enumerated axes")
    x_axis, y_axis = spec.axes
    if args.adaptive:
        if args.workers or args.cache:
            print("note: --workers/--cache apply to the fixed-n map path; ignored with --adaptive")
        mc_map = refine_flip_probability_map(
            MapAxis(path=x_axis.path, values=list(x_axis.values)),
            MapAxis(path=y_axis.path, values=list(y_axis.values)),
            simulation=spec.simulation,
            attack=spec.attack,
            montecarlo=spec.montecarlo,
            name=spec.name,
            target_half_width=args.target_ci,
            budget=args.budget,
            threshold=args.threshold,
            batch_size=args.batch_size,
            point_n_max=args.point_max,
        )
        mc_map.result.metadata.setdefault(
            "manifest", build_manifest(extra={"kind": "mc_map", "spec": spec.name, "adaptive": True})
        )
        if args.json:
            print(mc_map.result.to_json())
        else:
            print(mc_map.to_heatmap())
            print()
            print(mc_map.allocation_heatmap())
            print()
            print(mc_map.result.to_table())
            print()
            print(
                f"map {spec.name!r}: target CI half-width {mc_map.target_half_width:g}, "
                f"{int(mc_map.converged.sum())}/{mc_map.converged.size} points converged, "
                f"{mc_map.total_samples} samples "
                f"({mc_map.solve_ratio:.1f}x fewer than the fixed-n equivalent)"
            )
    else:
        mc_map = flip_probability_map(
            MapAxis(path=x_axis.path, values=list(x_axis.values)),
            MapAxis(path=y_axis.path, values=list(y_axis.values)),
            simulation=spec.simulation,
            attack=spec.attack,
            montecarlo=spec.montecarlo,
            name=spec.name,
            workers=args.workers,
            cache=ResultCache(args.cache) if args.cache else None,
        )
        mc_map.result.metadata.setdefault(
            "manifest", build_manifest(extra={"kind": "mc_map", "spec": spec.name, "adaptive": False})
        )
        if args.json:
            print(mc_map.result.to_json())
        else:
            print(mc_map.to_heatmap())
            print()
            print(mc_map.result.to_table())
            print()
            print(
                f"map {spec.name!r}: {mc_map.n_samples} cells/point, "
                f"mean bit-error rate {mc_map.bit_error_rate():.3f}"
            )
    if args.save:
        path = mc_map.result.save(args.save)
        print(f"saved map exports next to {path}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    cmd = list(args.cmd)
    if cmd and cmd[0] == "--":
        # argparse.REMAINDER keeps an explicit separator; drop it.
        cmd = cmd[1:]
    if not cmd:
        raise ReproError("`repro profile` needs a command to run, e.g. `repro profile mc run SPEC.json`")
    if cmd[0] == "profile":
        raise ReproError("`repro profile` cannot profile itself")
    inner = build_parser().parse_args(cmd)
    if getattr(inner, "telemetry", None):
        print("note: --telemetry is redundant under `repro profile`; ignored")
        inner.telemetry = None
    with telemetry_capture(Telemetry()) as tel:
        with tel.span(f"cli.{_command_label(inner)}"):
            code = inner.handler(inner)
        snapshot = tel.snapshot()
    print()
    print(render_report(snapshot))
    if args.output:
        write_snapshot(args.output, _snapshot_payload(snapshot))
        print(f"wrote telemetry snapshot to {args.output}")
    return code


def _cmd_version(args: argparse.Namespace) -> int:
    from .. import __version__

    print(__version__)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro`` and ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _run_with_telemetry(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); not an error of ours.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())

"""Declarative sweep specifications for NeuroHammer attack campaigns.

A campaign is a set of simulation points derived from one base configuration
(a :class:`~repro.config.SimulationConfig` plus an
:class:`~repro.config.AttackConfig`, and — for ``kind="montecarlo"``
campaigns — a :class:`~repro.montecarlo.engine.MonteCarloConfig`) and a list
of sweep axes.  Each axis addresses one configuration field through a dotted
path rooted at ``simulation``, ``attack`` or ``montecarlo`` (e.g.
``attack.pulse.length_s`` or ``simulation.geometry.electrode_spacing_m``)
and either enumerates explicit values or describes a range to sample from.
The ``kind`` selects what every point computes: one deterministic attack run
(``"attack"``, the default) or one sampled-population evaluation through the
Monte-Carlo engine (``"montecarlo"``).

Three sweep modes are supported:

``grid``
    The cartesian product of all axis values; the first axis varies slowest
    (outer loop), matching the nested ``for`` loops the figure experiments
    historically used.
``zip``
    Axes are iterated in lockstep; all axes must have the same length.
``random``
    ``samples`` points are drawn from a seeded child stream of the shared RNG
    tree (:mod:`repro.utils.rng`), so a spec with the same seed always
    materialises the same campaign — and the same root-seed convention
    governs the Monte-Carlo population sampler.

:meth:`CampaignSpec.materialise` turns the spec into a list of
:class:`CampaignPoint` objects.  Every point carries the fully validated,
canonicalised job configuration and a content-addressed key — a SHA-256 hash
over the job plus the code version — which the result cache and the runner
use to identify work across processes and across interrupted runs.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from ..config import AttackConfig, JsonConfig, SimulationConfig
from ..errors import CampaignError, ReproError
from ..utils.rng import child_rng

#: Bump when the job layout changes so stale cache entries are never reused.
SPEC_FORMAT_VERSION = 2

#: Sweep modes understood by :class:`CampaignSpec`.
SWEEP_MODES = ("grid", "zip", "random")

#: Job kinds the runner can execute per point.
JOB_KINDS = ("attack", "montecarlo")

#: Root sections a sweep path may address.
PATH_ROOTS = ("simulation", "attack", "montecarlo")

#: Path prefixes the attack job actually consumes.  Sweeping anything else
#: (e.g. ``simulation.thermal.*``, which the quasi-static engine does not
#: read) would materialise a full-looking campaign whose points all compute
#: the same thing, so such axes are rejected up front.
CONSUMED_PATH_PREFIXES = ("attack.", "simulation.geometry.", "simulation.wires.")

#: Additional prefixes consumed by Monte-Carlo jobs.
MONTECARLO_PATH_PREFIXES = CONSUMED_PATH_PREFIXES + ("montecarlo.",)


def code_version() -> str:
    """Version string mixed into every point key.

    Results cached by one release are invalidated by the next, because the
    simulation output may legitimately change between versions.
    """
    from .. import __version__

    return __version__


@dataclass
class SweepAxis(JsonConfig):
    """One swept configuration field.

    Either ``values`` (an explicit list, usable in every mode) or a
    ``low``/``high`` range (random mode only; ``log=True`` samples uniformly
    in log-space) must be given.
    """

    path: str
    values: Optional[List[Any]] = None
    low: Optional[float] = None
    high: Optional[float] = None
    log: bool = False

    def __post_init__(self) -> None:
        root = self.path.split(".", 1)[0] if self.path else ""
        if root not in PATH_ROOTS or "." not in self.path:
            raise CampaignError(
                f"axis path {self.path!r} must be a dotted path rooted at one of {PATH_ROOTS}"
            )
        has_range = self.low is not None or self.high is not None
        if self.values is not None:
            if has_range:
                raise CampaignError(f"axis {self.path!r}: give either values or a low/high range, not both")
            if not isinstance(self.values, (list, tuple)) or len(self.values) == 0:
                raise CampaignError(f"axis {self.path!r}: values must be a non-empty list")
            self.values = list(self.values)
        else:
            if self.low is None or self.high is None:
                raise CampaignError(f"axis {self.path!r}: needs explicit values or both low and high")
            if not self.high > self.low:
                raise CampaignError(f"axis {self.path!r}: high must exceed low")
            if self.log and self.low <= 0:
                raise CampaignError(f"axis {self.path!r}: log-space sampling needs a positive low bound")

    @property
    def is_enumerated(self) -> bool:
        """True when the axis lists explicit values (required outside random mode)."""
        return self.values is not None

    def sample(self, rng: np.random.Generator) -> Any:
        """Draw one value for random-mode sweeps.

        Values are returned as plain Python objects (never NumPy scalars) so
        the materialised jobs stay JSON-canonical and hash stably.
        """
        if self.values is not None:
            return self.values[int(rng.integers(len(self.values)))]
        assert self.low is not None and self.high is not None
        if self.log:
            return math.exp(float(rng.uniform(math.log(self.low), math.log(self.high))))
        return float(rng.uniform(self.low, self.high))


@dataclass(frozen=True)
class CampaignPoint:
    """One materialised campaign job.

    ``job`` is the canonical, fully validated configuration tree
    (``{"simulation": {...}, "attack": {...}}``); ``overrides`` records just
    the swept values that produced it, keyed by axis path; ``key`` is the
    content hash used for caching and resume.
    """

    index: int
    overrides: Dict[str, Any]
    job: Dict[str, Any]
    key: str

    def label(self) -> str:
        """Compact human-readable description of the swept values."""
        if not self.overrides:
            return f"point {self.index}"
        parts = [f"{path.rsplit('.', 1)[-1]}={value!r}" for path, value in self.overrides.items()]
        return ", ".join(parts)


def point_key(job: Mapping[str, Any], version: Optional[str] = None) -> str:
    """Stable content hash of one job configuration plus the code version."""
    blob = json.dumps(
        {
            "format": SPEC_FORMAT_VERSION,
            "code": version if version is not None else code_version(),
            "job": job,
        },
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _set_by_path(tree: Dict[str, Any], path: str, value: Any) -> None:
    """Assign ``value`` at a dotted ``path`` inside a nested config dict."""
    parts = path.split(".")
    node = tree
    for depth, part in enumerate(parts[:-1]):
        if not isinstance(node, dict) or part not in node:
            raise CampaignError(f"sweep path {path!r}: unknown section {'.'.join(parts[: depth + 1])!r}")
        node = node[part]
    leaf = parts[-1]
    if not isinstance(node, dict) or leaf not in node:
        raise CampaignError(f"sweep path {path!r}: unknown configuration field {leaf!r}")
    node[leaf] = value


@dataclass
class CampaignSpec(JsonConfig):
    """Declarative description of a parameter-sweep campaign.

    The spec is a plain JSON-serialisable object (see
    :meth:`~repro.config.JsonConfig.to_json` /
    :meth:`~repro.config.JsonConfig.from_json`), so campaigns can be launched,
    resumed and audited from a single file.
    """

    name: str = "campaign"
    #: Aggregation preset; ``fig3a``..``fig3d`` reproduce the paper figures,
    #: anything else aggregates generically.
    experiment: str = "attack"
    #: What each point computes: a single ``"attack"`` run or a
    #: ``"montecarlo"`` population evaluation.
    kind: str = "attack"
    mode: str = "grid"
    #: Base overrides for :class:`~repro.config.SimulationConfig`.
    simulation: Dict[str, Any] = field(default_factory=dict)
    #: Base overrides for :class:`~repro.config.AttackConfig`.
    attack: Dict[str, Any] = field(default_factory=dict)
    #: Base overrides for :class:`~repro.montecarlo.engine.MonteCarloConfig`
    #: (``montecarlo`` kind only).
    montecarlo: Dict[str, Any] = field(default_factory=dict)
    axes: List[SweepAxis] = field(default_factory=list)
    #: Number of points drawn in ``random`` mode.
    samples: int = 0
    #: Seed for ``random`` mode; identical seeds materialise identical campaigns.
    seed: int = 0
    #: Points materialised (and dispatched) at a time; 0 materialises the
    #: whole campaign up front.  Large (10^5+ point) sweeps should set this
    #: so the runner streams the campaign through the cache shard by shard
    #: instead of holding every validated job in memory.
    shard_size: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("campaign name must be non-empty")
        if self.shard_size < 0:
            raise CampaignError("shard_size must be non-negative (0 = no sharding)")
        if self.kind not in JOB_KINDS:
            raise CampaignError(f"unknown job kind {self.kind!r}; expected one of {JOB_KINDS}")
        if self.mode not in SWEEP_MODES:
            raise CampaignError(f"unknown sweep mode {self.mode!r}; expected one of {SWEEP_MODES}")
        if self.montecarlo and self.kind != "montecarlo":
            raise CampaignError("the montecarlo section is only meaningful with kind='montecarlo'")
        self.axes = [
            axis if isinstance(axis, SweepAxis) else SweepAxis.from_dict(axis) for axis in self.axes
        ]
        consumed = MONTECARLO_PATH_PREFIXES if self.kind == "montecarlo" else CONSUMED_PATH_PREFIXES
        seen = set()
        for axis in self.axes:
            if not axis.path.startswith(consumed):
                raise CampaignError(
                    f"axis path {axis.path!r} is not consumed by a {self.kind} job; "
                    f"sweepable paths start with one of {consumed}"
                )
            if axis.path in seen:
                raise CampaignError(f"duplicate sweep axis {axis.path!r}")
            seen.add(axis.path)
        if self.mode == "random":
            if self.samples < 1:
                raise CampaignError("random mode needs samples >= 1")
        else:
            if self.samples:
                raise CampaignError(f"samples is only meaningful in random mode, not {self.mode!r}")
            for axis in self.axes:
                if not axis.is_enumerated:
                    raise CampaignError(
                        f"axis {axis.path!r}: {self.mode} mode needs explicit values, not a range"
                    )
            if self.mode == "zip" and self.axes:
                lengths = {len(axis.values) for axis in self.axes}  # type: ignore[arg-type]
                if len(lengths) > 1:
                    raise CampaignError(f"zip mode needs equal-length axes, got lengths {sorted(lengths)}")

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------

    def point_count(self) -> int:
        """Number of points the spec will materialise (without materialising)."""
        if self.mode == "random":
            return self.samples
        if not self.axes:
            return 1
        if self.mode == "zip":
            return len(self.axes[0].values)  # type: ignore[arg-type]
        count = 1
        for axis in self.axes:
            count *= len(axis.values)  # type: ignore[arg-type]
        return count

    def _override_sets(self) -> Iterator[Dict[str, Any]]:
        """Per-point ``{path: value}`` override mappings, generated lazily.

        Laziness is what makes :attr:`shard_size` effective: a 10^6-point
        grid never exists as a list — the runner pulls one shard of points at
        a time.  Random mode draws sequentially from one child stream, so the
        streamed campaign is identical to the materialised one.
        """
        if self.mode == "random":
            # One spawn-key child stream of the shared RNG tree (see
            # repro.utils.rng), so campaign draws and Monte-Carlo populations
            # are reproducible from the same root-seed convention.
            rng = child_rng(self.seed, "campaign", "random-sweep")
            for _ in range(self.samples):
                yield {axis.path: axis.sample(rng) for axis in self.axes}
            return
        if not self.axes:
            yield {}
            return
        paths = [axis.path for axis in self.axes]
        if self.mode == "zip":
            combos = zip(*[axis.values for axis in self.axes])  # type: ignore[arg-type]
        else:
            combos = itertools.product(*[axis.values for axis in self.axes])  # type: ignore[arg-type]
        for combo in combos:
            yield dict(zip(paths, combo))

    def _validated_job(self, tree: Mapping[str, Any]) -> Dict[str, Any]:
        """Validate one configuration tree and return its canonical dict form."""
        simulation = SimulationConfig.from_dict(tree["simulation"])
        attack = AttackConfig.from_dict(tree["attack"])
        job: Dict[str, Any] = {
            "kind": self.kind,
            "simulation": simulation.to_dict(),
            "attack": attack.to_dict(),
        }
        if self.kind == "montecarlo":
            # Imported lazily: repro.montecarlo builds on the campaign package.
            from ..montecarlo.engine import MonteCarloConfig

            job["montecarlo"] = MonteCarloConfig.from_dict(tree.get("montecarlo", {})).to_dict()
        return job

    def base_job(self) -> Dict[str, Any]:
        """The validated base configuration tree before any axis override."""
        try:
            return self._validated_job(
                {"simulation": self.simulation, "attack": self.attack, "montecarlo": self.montecarlo}
            )
        except ReproError as exc:
            raise CampaignError(f"campaign {self.name!r}: invalid base configuration: {exc}") from exc

    def iter_points(self) -> Iterator[CampaignPoint]:
        """Validated, content-addressed campaign points, generated lazily.

        Equivalent to :meth:`materialise` point for point, but never holds
        more than one point in memory — the streaming entry point behind
        :attr:`shard_size`.
        """
        base = self.base_job()
        version = code_version()
        for index, overrides in enumerate(self._override_sets()):
            tree = json.loads(json.dumps(base))
            for path, value in overrides.items():
                _set_by_path(tree, path, value)
            try:
                validated = self._validated_job(tree)
            except ReproError as exc:
                raise CampaignError(
                    f"campaign {self.name!r}: point {index} ({overrides!r}) is invalid: {exc}"
                ) from exc
            # Canonicalise through a JSON round-trip so tuples/lists and float
            # formatting cannot make equal configs hash differently.
            job = json.loads(json.dumps(validated, sort_keys=True))
            yield CampaignPoint(
                index=index, overrides=dict(overrides), job=job, key=point_key(job, version)
            )

    def iter_shards(self) -> Iterator[List[CampaignPoint]]:
        """Points grouped into :attr:`shard_size` chunks (one chunk if 0)."""
        if self.shard_size <= 0:
            yield list(self.iter_points())
            return
        shard: List[CampaignPoint] = []
        for point in self.iter_points():
            shard.append(point)
            if len(shard) >= self.shard_size:
                yield shard
                shard = []
        if shard:
            yield shard

    def materialise(self) -> List[CampaignPoint]:
        """Expand the spec into validated, content-addressed campaign points."""
        return list(self.iter_points())

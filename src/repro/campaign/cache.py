"""Content-addressed on-disk cache for campaign job results.

Every campaign point hashes its materialised configuration together with the
library version (:func:`repro.campaign.spec.point_key`); the cache stores one
JSON file per key.  Re-running a campaign therefore only computes the points
that are missing, and a campaign interrupted half-way resumes for free — the
runner simply skips every key that already resolves.

Writes go through a temp-file-plus-rename so a crash mid-write can never
leave a truncated entry behind; unreadable entries are treated as misses.
"""

from __future__ import annotations

import contextlib
import json
import os
import string
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from ..errors import CampaignError

_KEY_ALPHABET = set(string.hexdigits)


class ResultCache:
    """A directory of ``<key>.json`` result files keyed by content hash."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise CampaignError(f"result cache root {self.root} exists and is not a directory")
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # key/path handling
    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """Filesystem path of one cache entry."""
        if not key or not set(key) <= _KEY_ALPHABET:
            raise CampaignError(f"invalid cache key {key!r}; expected a hex digest")
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    # read/write
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the cached payload for ``key``, or ``None`` on a miss.

        A corrupt entry (unparseable, or not a JSON object) counts as a miss
        so that a damaged cache degrades to recomputation instead of failing
        the campaign — and it is quarantined: the file is renamed to
        ``<key>.corrupt`` so the recomputed result can land cleanly, the
        evidence survives for inspection, and every later lookup of the key
        is a plain miss instead of a repeated parse failure.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            payload = None
        if not isinstance(payload, dict):
            self._quarantine(path)
            return None
        return payload

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (``.json`` → ``.corrupt``) and count it."""
        with contextlib.suppress(OSError):
            os.replace(path, path.with_suffix(".corrupt"))
        from ..obs import get_telemetry

        tel = get_telemetry()
        if tel.enabled:
            tel.count("cache.corrupt_entries")

    def put(self, key: str, payload: Dict[str, Any]) -> Path:
        """Atomically store ``payload`` under ``key``; returns the entry path.

        The temp file name is unique per writer so concurrent campaigns
        sharing one cache cannot clobber each other's in-flight writes; the
        final ``os.replace`` makes last-writer-wins the worst case.
        """
        path = self.path_for(key)
        text = json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
        fd, tmp_name = tempfile.mkstemp(prefix=f"{key}.", suffix=".tmp", dir=self.root)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return path

    def delete(self, key: str) -> bool:
        """Drop one entry; returns True if it existed."""
        path = self.path_for(key)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        return True

    def clear(self) -> int:
        """Drop every entry; returns the number of entries removed."""
        removed = 0
        for path in self._entry_paths():
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def _entry_paths(self) -> List[Path]:
        return sorted(self.root.glob("*.json"))

    def keys(self) -> List[str]:
        """All keys currently stored."""
        return [path.stem for path in self._entry_paths()]

    def contains(self, key: str) -> bool:
        """True if an entry for ``key`` exists on disk."""
        return self.path_for(key).exists()

    def stats(self) -> Dict[str, Any]:
        """Entry count, total size, and quarantined-entry count of the cache."""
        paths = self._entry_paths()
        return {
            "root": str(self.root),
            "entries": len(paths),
            "bytes": sum(path.stat().st_size for path in paths),
            "corrupt": len(list(self.root.glob("*.corrupt"))),
        }

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        return len(self._entry_paths())

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r}, entries={len(self)})"

"""Content-addressed on-disk cache for campaign job results.

Every campaign point hashes its materialised configuration together with the
library version (:func:`repro.campaign.spec.point_key`); the cache stores one
result payload per key.

Two backends live behind one API:

* **legacy** — the original directory of ``<key>.json`` files.  Writes go
  through a temp-file-plus-rename so a crash mid-write can never leave a
  truncated entry behind; unreadable entries are treated as misses and
  quarantined to ``<key>.corrupt``.
* **store** — a :class:`~repro.store.ResultStore`: a crash-consistent sqlite
  index over checksummed content-addressed payloads, safe for multiple
  concurrent writer processes, with advisory point leases
  (:meth:`ResultCache.lease_manager`) so concurrent campaigns partition a
  sweep instead of duplicating it.

``ResultCache`` is the compatibility facade: store directories are
auto-detected (``backend="auto"``, the default), ``backend="store"``
creates one, and a store that cannot be opened — read-only root, locked-out
or damaged index — **degrades to the legacy per-file path with a warning**
rather than failing the campaign.
"""

from __future__ import annotations

import contextlib
import json
import os
import string
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from ..errors import CampaignError
from ..utils.logging import get_logger

logger = get_logger("campaign.cache")

_KEY_ALPHABET = set(string.hexdigits)

#: Accepted ``backend`` arguments of :class:`ResultCache`.
CACHE_BACKENDS = ("auto", "legacy", "store")


def _umask_mode(base: int = 0o666) -> int:
    """``base`` masked by the process umask (os.umask is read-by-set)."""
    mask = os.umask(0)
    os.umask(mask)
    return base & ~mask


class ResultCache:
    """Result files keyed by content hash, legacy per-file or store-backed."""

    def __init__(
        self,
        root: Union[str, Path],
        backend: str = "auto",
        lease_ttl_s: Optional[float] = None,
    ):
        if backend not in CACHE_BACKENDS:
            raise CampaignError(
                f"unknown cache backend {backend!r}; expected one of {CACHE_BACKENDS}"
            )
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise CampaignError(f"result cache root {self.root} exists and is not a directory")
        self.root.mkdir(parents=True, exist_ok=True)
        self.store: Optional[Any] = None
        # Imported lazily so the legacy path never pays for (or depends on)
        # the store package's sqlite machinery.
        from ..store import DEFAULT_LEASE_TTL_S, ResultStore, StoreUnavailableError, is_store_dir

        if backend == "store" or (backend == "auto" and is_store_dir(self.root)):
            try:
                self.store = ResultStore(
                    self.root,
                    lease_ttl_s=lease_ttl_s if lease_ttl_s is not None else DEFAULT_LEASE_TTL_S,
                )
            except StoreUnavailableError as exc:
                logger.warning(
                    "shared result store at %s unavailable (%s); "
                    "degrading to the legacy per-file cache",
                    self.root,
                    exc,
                )
                from ..obs import get_telemetry

                tel = get_telemetry()
                if tel.enabled:
                    tel.count("store.degraded")

    @property
    def backend(self) -> str:
        """The active backend: ``"store"`` or ``"legacy"``."""
        return "store" if self.store is not None else "legacy"

    # ------------------------------------------------------------------
    # key/path handling
    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """Filesystem path of one cache entry (legacy layout)."""
        if not key or not set(key) <= _KEY_ALPHABET:
            raise CampaignError(f"invalid cache key {key!r}; expected a hex digest")
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    # read/write
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the cached payload for ``key``, or ``None`` on a miss.

        A corrupt entry counts as a miss so that a damaged cache degrades to
        recomputation instead of failing the campaign — and it is
        quarantined so the recomputed result can land cleanly and the
        evidence survives for inspection.  The store backend detects damage
        by checksum (torn-but-parseable payloads included); the legacy
        backend by parseability (``<key>.json`` → ``<key>.corrupt``).
        """
        self.path_for(key)  # validate the key uniformly across backends
        if self.store is not None:
            return self.store.get(key)
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            payload = None
        if not isinstance(payload, dict):
            self._quarantine(path)
            return None
        return payload

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (``.json`` → ``.corrupt``) and count it."""
        with contextlib.suppress(OSError):
            os.replace(path, path.with_suffix(".corrupt"))
        from ..obs import get_telemetry

        tel = get_telemetry()
        if tel.enabled:
            tel.count("cache.corrupt_entries")

    def put(self, key: str, payload: Dict[str, Any]) -> Path:
        """Atomically store ``payload`` under ``key``; returns the entry path.

        The temp file name is unique per writer so concurrent campaigns
        sharing one cache cannot clobber each other's in-flight writes; the
        final ``os.replace`` makes last-writer-wins the worst case.  Entries
        are published at the process umask's permissions (not ``mkstemp``'s
        private 0600), so a shared cache stays readable by other users.
        """
        path = self.path_for(key)
        if self.store is not None:
            return self.store.put(key, payload, spec_name=payload.get("spec_name"))
        text = json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
        fd, tmp_name = tempfile.mkstemp(prefix=f"{key}.", suffix=".tmp", dir=self.root)
        try:
            os.fchmod(fd, _umask_mode())
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return path

    def delete(self, key: str) -> bool:
        """Drop one entry; returns True if it existed."""
        path = self.path_for(key)
        if self.store is not None:
            return self.store.delete(key)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        return True

    def clear(self) -> int:
        """Drop every entry (quarantined ``.corrupt`` files included).

        Returns the number of live entries removed; quarantine files are
        swept alongside so a cleared cache directory is genuinely empty
        instead of accumulating stale evidence forever.
        """
        if self.store is not None:
            return self.store.clear()
        removed = 0
        for path in self._entry_paths():
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.root.glob("*.corrupt"):
            path.unlink(missing_ok=True)
        return removed

    # ------------------------------------------------------------------
    # concurrency (store backend only)
    # ------------------------------------------------------------------

    def lease_manager(self) -> Optional[Any]:
        """The store's advisory point leases, or None on the legacy backend.

        The campaign runner uses this to claim pending points before
        computing them, so N concurrent runs of one spec partition the
        sweep; the legacy backend has no shared index worth coordinating
        over, so it returns None and the runner skips leasing.
        """
        return self.store.leases if self.store is not None else None

    def hold_write_lock(self, duration_s: float) -> None:
        """Chaos-harness hook: hold the store's index write lock (no-op legacy)."""
        if self.store is not None:
            self.store.hold_write_lock(duration_s)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def _entry_paths(self) -> List[Path]:
        return sorted(self.root.glob("*.json"))

    def keys(self) -> List[str]:
        """All keys currently stored."""
        if self.store is not None:
            return self.store.keys()
        return [path.stem for path in self._entry_paths()]

    def contains(self, key: str) -> bool:
        """True if an entry for ``key`` exists."""
        if self.store is not None:
            return self.store.contains(key)
        return self.path_for(key).exists()

    def stats(self) -> Dict[str, Any]:
        """Entry count, total size, and quarantined-entry count of the cache."""
        if self.store is not None:
            return self.store.stats()
        paths = self._entry_paths()
        total_bytes = 0
        entries = 0
        for path in paths:
            try:
                total_bytes += path.stat().st_size
            except OSError:
                # Raced a concurrent delete between glob and stat: the entry
                # is gone, which is indistinguishable from never-globbed.
                continue
            entries += 1
        return {
            "root": str(self.root),
            "backend": "legacy",
            "entries": entries,
            "bytes": total_bytes,
            "corrupt": len(list(self.root.glob("*.corrupt"))),
        }

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        if self.store is not None:
            return len(self.store)
        return len(self._entry_paths())

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r}, backend={self.backend!r}, entries={len(self)})"

"""Reduction of raw campaign job records into experiment tables and stats.

A :class:`~repro.campaign.runner.CampaignReport` is a flat list of job
records; this module turns it back into the
:class:`~repro.experiments.base.ExperimentResult` tables the rest of the
repository (benchmarks, examples, CSV/JSON export) already understands, plus
summary statistics over the whole sweep — success rates and the minimum
pulses-to-flip observed, the campaign-level analogue of the per-figure
headline numbers.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from ..errors import CampaignError
from ..obs import build_manifest
from .runner import CampaignReport, JobRecord
from .spec import CampaignSpec

#: Builds one table row from a successful job record.
RowBuilder = Callable[[JobRecord], Dict[str, Any]]

#: Result fields included in generically aggregated tables, in display order.
GENERIC_RESULT_COLUMNS = (
    "pulses",
    "flipped",
    "victim_temperature_k",
    "victim_final_x",
    "stress_time_s",
)

#: Result fields of Monte-Carlo population records, in display order.
MONTECARLO_RESULT_COLUMNS = (
    "n_samples",
    "flipped",
    "failed",
    "flip_probability",
    "min_pulses_to_flip",
    "p50",
    "geomean_pulses_to_flip",
    "mean_victim_temperature_k",
)


def ensure_complete(report: CampaignReport) -> None:
    """Raise :class:`CampaignError` if any point errored or timed out."""
    failed = report.failed_records
    if failed:
        details = "; ".join(
            f"point {record.index} [{record.status}]: {record.error}" for record in failed[:5]
        )
        more = f" (+{len(failed) - 5} more)" if len(failed) > 5 else ""
        raise CampaignError(
            f"campaign {report.spec_name!r}: {len(failed)} of {len(report.records)} points failed: "
            f"{details}{more}"
        )


def generic_row(record: JobRecord) -> Dict[str, Any]:
    """Default row shape: swept values (by leaf name) plus key result fields.

    Columns are named after the path leaf; when two axes share a leaf the
    full dotted path is used so neither dimension is silently overwritten.
    """
    leaf_owners: Dict[str, List[str]] = {}
    for path in record.overrides:
        leaf_owners.setdefault(path.rsplit(".", 1)[-1], []).append(path)
    row: Dict[str, Any] = {}
    for path, value in record.overrides.items():
        leaf = path.rsplit(".", 1)[-1]
        row[leaf if len(leaf_owners[leaf]) == 1 else path] = value
    result = record.result or {}
    columns = MONTECARLO_RESULT_COLUMNS if "flip_probability" in result else GENERIC_RESULT_COLUMNS
    for column in columns:
        if column in result:
            row[column] = result[column]
    return row


def experiment_row_builder(experiment: str) -> Optional[RowBuilder]:
    """Figure-specific row builder for a spec's ``experiment`` tag, if any."""
    # Imported lazily: the experiments package imports this module at import
    # time, so a top-level import here would be circular.
    from ..experiments import (
        fig3a_pulse_length,
        fig3b_electrode_spacing,
        fig3c_ambient_temperature,
        fig3d_attack_patterns,
    )

    registry: Dict[str, RowBuilder] = {
        "fig3a": fig3a_pulse_length.row_from_record,
        "fig3b": fig3b_electrode_spacing.row_from_record,
        "fig3c": fig3c_ambient_temperature.row_from_record,
        "fig3d": fig3d_attack_patterns.row_from_record,
    }
    return registry.get(experiment)


def to_experiment_result(
    spec: CampaignSpec,
    report: CampaignReport,
    row_builder: Optional[RowBuilder] = None,
    description: Optional[str] = None,
    metadata: Optional[Dict[str, Any]] = None,
):
    """Reduce a report into an :class:`~repro.experiments.base.ExperimentResult`.

    Failed points abort the reduction — a partially aggregated figure is
    worse than an explicit error.  ``row_builder`` defaults to the figure
    preset matching ``spec.experiment``, falling back to :func:`generic_row`.
    """
    from ..experiments.base import ExperimentResult

    ensure_complete(report)
    if row_builder is None:
        row_builder = experiment_row_builder(spec.experiment) or generic_row
    result = ExperimentResult(
        name=spec.experiment if spec.experiment != "attack" else spec.name,
        description=description or f"Campaign {spec.name!r} ({spec.mode} sweep, {len(report.records)} points)",
        columns=[],
        metadata={"campaign": campaign_metadata(spec, report), **(metadata or {})},
    )
    for record in report.ok_records:
        result.add_row(**row_builder(record))
    return result


def campaign_metadata(spec: CampaignSpec, report: CampaignReport) -> Dict[str, Any]:
    """Provenance block recorded into aggregated results."""
    return {
        "name": spec.name,
        "mode": spec.mode,
        "axes": [axis.path for axis in spec.axes],
        "points": len(report.records),
        "cached": report.cached_count,
        "duration_s": report.duration_s,
        "compute_duration_s": report.compute_duration_s,
        "manifest": build_manifest(
            extra={"kind": "campaign", "spec": spec.name, "experiment": spec.experiment}
        ),
    }


def summarise(report: CampaignReport) -> Dict[str, Any]:
    """Summary statistics over a campaign: outcome counts and flip stats.

    ``min_pulses_to_flip`` is the campaign's headline number — the cheapest
    observed attack across the whole sweep; ``success_rate`` is the fraction
    of executed points whose victim actually flipped.
    """
    counts = report.counts()
    summary: Dict[str, Any] = {
        "spec_name": report.spec_name,
        "experiment": report.experiment,
        **counts,
        "duration_s": report.duration_s,
    }
    montecarlo = [
        record.result
        for record in report.ok_records
        if record.result and "flip_probability" in record.result
    ]
    if montecarlo:
        # Population points report distributions, not single outcomes: the
        # success rate is the mean flip probability over the sweep, and the
        # pulse extremes come from the per-point population extremes.
        minima = [r["min_pulses_to_flip"] for r in montecarlo if r.get("min_pulses_to_flip") is not None]
        maxima = [r["max_pulses_to_flip"] for r in montecarlo if r.get("max_pulses_to_flip") is not None]
        summary.update(
            success_rate=sum(r["flip_probability"] for r in montecarlo) / len(montecarlo),
            min_pulses_to_flip=min(minima) if minima else None,
            max_pulses_to_flip=max(maxima) if maxima else None,
            geomean_pulses_to_flip=None,
            samples_evaluated=sum(int(r.get("n_samples", 0)) for r in montecarlo),
        )
        return summary
    flipped = [
        record.result["pulses"]
        for record in report.ok_records
        if record.result and record.result.get("flipped")
    ]
    summary.update(
        success_rate=(len(flipped) / counts["ok"]) if counts["ok"] else 0.0,
        min_pulses_to_flip=min(flipped) if flipped else None,
        max_pulses_to_flip=max(flipped) if flipped else None,
        geomean_pulses_to_flip=(
            math.exp(sum(math.log(p) for p in flipped) / len(flipped)) if flipped else None
        ),
    )
    return summary


def scenario_success_rates(report: CampaignReport) -> Dict[str, Dict[str, Any]]:
    """Per-scenario success statistics, grouping points by their overrides.

    Points sharing the same override signature (e.g. the same bias scheme in
    a zip sweep over schemes and pulse lengths) are treated as one scenario.
    """
    groups: Dict[str, List[JobRecord]] = {}
    for record in report.ok_records:
        label = ", ".join(f"{k.rsplit('.', 1)[-1]}={v!r}" for k, v in sorted(record.overrides.items()))
        groups.setdefault(label or "default", []).append(record)
    rates: Dict[str, Dict[str, Any]] = {}
    for label, records in groups.items():
        flips = [r for r in records if r.result and r.result.get("flipped")]
        rates[label] = {
            "points": len(records),
            "flipped": len(flips),
            "success_rate": len(flips) / len(records) if records else 0.0,
        }
    return rates

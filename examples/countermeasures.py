#!/usr/bin/env python3
"""Evaluate countermeasures against NeuroHammer (the paper's future work).

Runs the defence evaluation harness against the paper's default attack and
reports, per countermeasure, whether it defeats the attack, how much it slows
it down and what it costs: V/3 biasing, victim refresh (counter-based and
PARA-style probabilistic), thermal-aware write throttling and SEC-DED ECC.

Run with:  python examples/countermeasures.py
"""

from __future__ import annotations

from repro.config import CrossbarGeometry
from repro.defense import (
    HammerCounterDetector,
    ProbabilisticRefresh,
    evaluate_defenses,
    minimum_refresh_interval,
)
from repro.utils import ascii_table


def main() -> None:
    print("Evaluating the countermeasure suite against the default attack "
          "(50 ns pulses, 50 nm spacing, 300 K)...")
    evaluation = evaluate_defenses()
    baseline = evaluation.baseline
    print(f"  undefended attack: {baseline.pulses} pulses "
          f"({baseline.wall_clock_s * 1e6:.0f} us) to flip the victim\n")

    rows = []
    for outcome in evaluation.outcomes:
        slowdown = outcome.slowdown_factor
        rows.append(
            (
                outcome.name,
                "defeated" if outcome.attack_defeated else "survives",
                "-" if slowdown is None else f"{slowdown:.1f}x",
                f"{outcome.overhead:.3f}",
                outcome.notes,
            )
        )
    print(ascii_table(["defence", "attack outcome", "attack slowdown", "overhead", "notes"], rows))

    print()
    print("Detection-based defences (how often would the victim get refreshed?):")
    geometry = CrossbarGeometry()
    aggressor = geometry.centre_cell()
    threshold = minimum_refresh_interval(baseline.pulses)
    counter = HammerCounterDetector(geometry, threshold=threshold)
    para = ProbabilisticRefresh(geometry, probability=2.0 / threshold)
    counter_triggers = 0
    for _ in range(baseline.pulses):
        if counter.observe_write(aggressor):
            counter_triggers += 1
        para.observe_write(aggressor)
    rows = [
        ("hammer counter", f"threshold {threshold} writes", counter_triggers),
        ("probabilistic (PARA)", f"p = {para.probability:.2e} per write", len(para.requests)),
    ]
    print(ascii_table(["detector", "setting", "victim refreshes during one attack"], rows))
    print()
    print("Both detectors refresh the victim well before the "
          f"{baseline.pulses} pulses the flip needs, defeating the attack.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Campaign engine demo: a declarative sweep with caching and a worker pool.

Builds a small grid campaign (pulse length x ambient temperature on a 3x3
crossbar), runs it through the campaign runner twice against an on-disk
result cache — the second pass is answered entirely from disk — and then
draws a seeded random sample over the same parameter space, the kind of
many-configuration study a hardware RowHammer harness would schedule.

Run with:  python examples/campaign_sweep.py
"""

from __future__ import annotations

import tempfile

from repro.campaign import CampaignRunner, CampaignSpec, ResultCache, summarise, to_experiment_result


def grid_spec() -> CampaignSpec:
    return CampaignSpec(
        name="grid-demo",
        mode="grid",
        simulation={"geometry": {"rows": 3, "columns": 3}},
        attack={"aggressors": [[1, 1]], "victim": [1, 2]},
        axes=[
            {"path": "attack.pulse.length_s", "values": [10e-9, 30e-9, 50e-9]},
            {"path": "attack.ambient_temperature_k", "values": [298.0, 348.0]},
        ],
    )


def random_spec() -> CampaignSpec:
    return CampaignSpec(
        name="random-demo",
        mode="random",
        samples=4,
        seed=2022,
        simulation={"geometry": {"rows": 3, "columns": 3}},
        attack={"aggressors": [[1, 1]], "victim": [1, 2]},
        axes=[
            {"path": "attack.pulse.length_s", "low": 10e-9, "high": 100e-9, "log": True},
            {"path": "attack.ambient_temperature_k", "low": 273.0, "high": 373.0},
        ],
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        spec = grid_spec()

        print("=== grid campaign, first run (computes every point) ===")
        report = CampaignRunner(spec, cache=cache, workers=2).run()
        print(report.summary())
        print()
        print(to_experiment_result(spec, report).to_table())
        print()

        print("=== same campaign again (served from the result cache) ===")
        rerun = CampaignRunner(spec, cache=cache).run()
        print(rerun.summary())
        assert rerun.cached_count == len(rerun.records)
        print()

        print("=== seeded random sweep over the same space ===")
        random_report = CampaignRunner(random_spec(), cache=cache).run()
        print(to_experiment_result(random_spec(), random_report).to_table())
        print()
        summary = summarise(random_report)
        print(
            f"success rate {summary['success_rate']:.0%}, "
            f"min pulses to flip {summary['min_pulses_to_flip']}"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Monte-Carlo variability demo: flip probabilities over a sampled population.

The paper's figures follow one nominal device; this demo asks the statistical
question that decides real-world severity.  It

1. samples a population of victim cells with realistic device-to-device
   variation (activation energy, series resistance) plus cycle-to-cycle
   pulse-length jitter, and evaluates it through the NumPy-vectorized engine,
2. sweeps a small pulse-length x ambient-temperature plane into a
   flip-probability map (each grid point is its own population, executed
   through the campaign runner), and
3. runs the defender-facing yield scenario: what fraction of whole arrays
   survives a realistic pulse budget?

Run with:  python examples/montecarlo_flip_probability.py
"""

from __future__ import annotations

from repro.attack import YieldScenario
from repro.config import AttackConfig, SimulationConfig
from repro.montecarlo import MapAxis, MonteCarloConfig, MonteCarloEngine, flip_probability_map

#: A 3x3 crossbar keeps the nominal circuit solve fast for the demo.
SIMULATION = {"geometry": {"rows": 3, "columns": 3}}
ATTACK = {"aggressors": [[1, 1]], "victim": [1, 2], "max_pulses": 500_000}

#: A few percent device-to-device variation plus pulse-length jitter.
DISTRIBUTIONS = [
    {"path": "device.activation_energy_ev", "kind": "normal",
     "mean": 1.0, "sigma": 0.01, "relative": True},
    {"path": "device.series_resistance_ohm", "kind": "normal",
     "mean": 1.0, "sigma": 0.05, "relative": True},
    # Relative: multiplies whatever nominal pulse length a study sweeps.
    {"path": "attack.pulse.length_s", "kind": "lognormal",
     "mean": 1.0, "sigma": 0.2, "relative": True},
]


def population_study() -> None:
    config = MonteCarloConfig(n_samples=256, seed=7, distributions=DISTRIBUTIONS)
    engine = MonteCarloEngine(
        config,
        simulation=SimulationConfig.from_dict(SIMULATION),
        attack=AttackConfig.from_dict(ATTACK),
    )
    result = engine.run()
    summary = result.summary()
    conditions = result.conditions
    print("== population study ==")
    print(
        f"nominal operating point: victim at {conditions.victim_voltage_v:.3f} V with "
        f"{conditions.crosstalk_temperature_k:.1f} K crosstalk from the aggressor"
    )
    print(
        f"{summary['flipped']}/{summary['valid']} sampled cells flip "
        f"(flip probability {summary['flip_probability']:.3f}) in {summary['duration_s']:.2f}s "
        f"via the {summary['engine']} engine"
    )
    print(
        f"pulses to flip: min {summary['min_pulses_to_flip']}, p10 {summary['p10']:.0f}, "
        f"p50 {summary['p50']:.0f}, p90 {summary['p90']:.0f}"
    )
    print()
    print(result.to_experiment_result(max_rows=6).to_table())
    print()


def probability_map() -> None:
    mc_map = flip_probability_map(
        MapAxis(path="attack.pulse.length_s", values=[20e-9, 40e-9, 60e-9], label="pulse length [s]"),
        MapAxis(
            path="attack.ambient_temperature_k",
            values=[290.0, 310.0, 330.0],
            label="ambient [K]",
        ),
        simulation=SIMULATION,
        attack=dict(ATTACK, max_pulses=20_000),
        montecarlo={"n_samples": 48, "seed": 7, "distributions": DISTRIBUTIONS},
        name="mc-demo-map",
    )
    print("== flip-probability map (pulse budget 20k) ==")
    print(mc_map.to_heatmap())
    print(f"mean bit-error rate over the plane: {mc_map.bit_error_rate():.3f}")
    print()


def yield_study() -> None:
    config = MonteCarloConfig(n_samples=128, seed=11, distributions=DISTRIBUTIONS)
    scenario = YieldScenario(
        config,
        simulation=SimulationConfig.from_dict(SIMULATION),
        attack=AttackConfig.from_dict(ATTACK),
        cells_per_array=1024,
        min_yield=0.99,
    )
    outcome = scenario.run(pulse_budget=2_000)
    print("== yield scenario (budget 2k pulses, 1 Kb arrays) ==")
    for step in outcome.steps:
        print(f"  - {step.description}")
    print(f"scenario success (yield requirement met): {outcome.success}")


def main() -> None:
    population_study()
    probability_map()
    yield_study()


if __name__ == "__main__":
    main()

"""Adaptive sampling end to end: sequential stopping, CI-driven map
refinement, and importance sampling on a rare flip event.

Fixed-n Monte-Carlo spends the same budget on every question.  This example
shows the three tools that spend it where the uncertainty actually is:

1. an adaptive population run that stops as soon as the flip-probability
   confidence interval is tight,
2. a 2-D flip-probability map refined under a CI target — plateau points get
   one batch, boundary points get the budget,
3. an importance-sampled estimate of a rare (< 1e-3) flip probability that
   would need ~100x more plain samples for the same interval.
"""

from __future__ import annotations

from repro import MonteCarloConfig, MonteCarloEngine
from repro.config import AttackConfig, SimulationConfig
from repro.montecarlo import MapAxis, refine_flip_probability_map

SIMULATION = {"geometry": {"rows": 3, "columns": 3}}
ATTACK = {"aggressors": [[1, 1]], "victim": [1, 2], "max_pulses": 5000}
#: Cycle-to-cycle pulse jitter plus a little device spread.
DISTRIBUTIONS = [
    {"path": "attack.pulse.length_s", "kind": "lognormal", "mean": 1.0, "sigma": 0.3,
     "relative": True},
    {"path": "device.activation_energy_ev", "kind": "normal", "mean": 1.0, "sigma": 0.005,
     "relative": True},
]


def adaptive_population() -> None:
    print("=== 1. adaptive population run =========================================")
    config = MonteCarloConfig(
        seed=7,
        distributions=DISTRIBUTIONS,
        adaptive={"batch_size": 64, "n_max": 4096, "target_half_width": 0.03},
    )
    engine = MonteCarloEngine(
        config,
        simulation=SimulationConfig.from_dict(SIMULATION),
        attack=AttackConfig.from_dict(ATTACK),
    )
    result = engine.run()
    low, high = result.interval()
    print(
        f"flip probability {result.flip_probability:.3f} "
        f"[{low:.3f}, {high:.3f}] after {result.n_samples} samples "
        f"in {len(result.adaptive.batches)} batches ({result.adaptive.stop_reason})"
    )
    print()


def refined_map() -> None:
    print("=== 2. CI-driven map refinement ========================================")
    refined = refine_flip_probability_map(
        MapAxis(path="attack.pulse.amplitude_v", values=[0.8, 1.0, 1.2]),
        MapAxis(path="attack.ambient_temperature_k", values=[260.0, 300.0, 340.0]),
        simulation=SIMULATION,
        attack=ATTACK,
        montecarlo={"seed": 5, "distributions": DISTRIBUTIONS},
        target_half_width=0.04,
        batch_size=64,
    )
    print(refined.to_heatmap())
    print()
    print(refined.allocation_heatmap())
    print()


def rare_event() -> None:
    print("=== 3. importance sampling on a rare event =============================")
    rare_attack = dict(ATTACK, max_pulses=1500)
    tilted = MonteCarloEngine(
        MonteCarloConfig(
            seed=9,
            n_samples=2000,
            distributions=DISTRIBUTIONS,
            importance={"shift_sigmas": {"attack.pulse.length_s": 2.0}},
        ),
        simulation=SimulationConfig.from_dict(SIMULATION),
        attack=AttackConfig.from_dict(rare_attack),
    ).run()
    low, high = tilted.interval()
    print(
        f"rare flip probability {tilted.flip_probability:.2e} "
        f"[{low:.2e}, {high:.2e}] from {tilted.n_samples} tilted samples "
        f"(effective sample size {tilted.effective_sample_size:.0f})"
    )
    print("a plain run at this precision would need roughly "
          f"{int(1.0 / max(tilted.flip_probability, 1e-9)):,}+ samples per flip observed")


def main() -> None:
    adaptive_population()
    refined_map()
    rare_event()


if __name__ == "__main__":
    main()

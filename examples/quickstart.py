#!/usr/bin/env python3
"""Quickstart: run the NeuroHammer attack on the paper's default crossbar.

The script walks through the four phases of the attack (Fig. 1 of the paper)
with concrete numbers, runs the default campaign (5x5 crossbar, 50 nm
electrode spacing, 300 K ambient, 50 ns pulses, V/2 scheme, centre-cell
aggressor) and shows how strongly the result depends on the pulse length and
the ambient temperature.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import hammer_once
from repro.attack import narrate_attack
from repro.utils import ascii_table, log_ascii_chart


def main() -> None:
    print("=" * 72)
    print("NeuroHammer quickstart — the four phases of the attack")
    print("=" * 72)
    narrative = narrate_attack(pulse_length_s=50e-9)
    for line in narrative.as_lines():
        print("  " + line)

    print()
    print("Full circuit-level campaign (paper default operating point):")
    result = hammer_once(pulse_length_s=50e-9)
    rows = [
        ("aggressor cell", str(result.aggressors[0])),
        ("victim cell", str(result.victim)),
        ("victim flipped", "yes" if result.flipped else "no"),
        ("hammer pulses", result.pulses),
        ("stress time", f"{result.stress_time_s * 1e6:.1f} us"),
        ("campaign wall clock", f"{result.wall_clock_s * 1e6:.1f} us"),
        ("victim filament temperature", f"{result.victim_temperature_k:.0f} K"),
    ]
    print(ascii_table(["quantity", "value"], rows))

    print()
    print("Sensitivity to the pulse length (Fig. 3a) and the ambient temperature (Fig. 3c):")
    pulse_lengths_ns = (10, 30, 50, 100)
    pulses = [hammer_once(pulse_length_s=t * 1e-9).pulses for t in pulse_lengths_ns]
    print(log_ascii_chart([f"{t} ns" for t in pulse_lengths_ns], pulses,
                          title="pulses to flip vs pulse length", unit=" pulses"))
    print()
    temperatures = (273.0, 300.0, 348.0, 373.0)
    pulses = [hammer_once(pulse_length_s=50e-9, ambient_temperature_k=t).pulses for t in temperatures]
    print(log_ascii_chart([f"{t:.0f} K" for t in temperatures], pulses,
                          title="pulses to flip vs ambient temperature", unit=" pulses"))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""End-to-end privilege escalation on a ReRAM main memory (paper Sec. VI).

Replays the Seaborn/Dullien RowHammer exploit on the reproduction's ReRAM
memory substrate: the attacker sprays page tables, hammers a cell adjacent to
one of its own page-table entries, flips a physical-frame-number bit so the
entry points at a page-table frame, and uses the resulting write access to
page tables to map and exfiltrate a victim secret.  The disturbance figures
(pulses per flip) are taken from the circuit-level attack simulation, and the
memory-isolation property is audited before and after the attack.

Run with:  python examples/privilege_escalation.py
"""

from __future__ import annotations

from repro.attack import PrivilegeEscalationScenario, RowHammerModel, hammer_once
from repro.memory import profile_from_attack_result
from repro.utils import ascii_table


def main() -> None:
    print("Step 1: characterise the physical attack on the crossbar (circuit level)")
    physics = hammer_once(pulse_length_s=50e-9)
    print(f"  one bit flip costs {physics.pulses} hammer pulses "
          f"({physics.wall_clock_s * 1e6:.0f} us of hammering)")

    print()
    print("Step 2: replay the page-table exploit on the ReRAM main-memory model")
    profile = profile_from_attack_result(physics.pulses, pulse_period_s=physics.pulse_length_s * 2)
    scenario = PrivilegeEscalationScenario(disturbance=profile)
    outcome = scenario.run()
    for step in outcome.steps:
        marker = f" [{step.pulses} pulses]" if step.pulses else ""
        print(f"  - {step.description}{marker}")

    print()
    print("Step 3: compare against the classic DRAM RowHammer exploit")
    rowhammer = RowHammerModel().estimate(double_sided=True)
    rows = [
        ("attack succeeded", "yes" if outcome.success else "no", "yes (literature)"),
        ("disturbance events needed", outcome.total_pulses, rowhammer.activations),
        ("time hammering", f"{outcome.attack_time_s * 1e3:.3f} ms", f"{rowhammer.attack_time_s * 1e3:.3f} ms"),
        ("isolation violated", "yes" if outcome.success else "no", "yes"),
        ("exfiltrated payload", repr(outcome.payload), "n/a"),
    ]
    print(ascii_table(["quantity", "NeuroHammer (this work)", "RowHammer (baseline)"], rows))


if __name__ == "__main__":
    main()

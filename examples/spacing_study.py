#!/usr/bin/env python3
"""Technology-scaling study: how electrode spacing changes the attack (Fig. 3b).

The paper's Fig. 3b shows that denser crossbars are more vulnerable.  This
example sweeps the electrode spacing across several technology points, for
three pulse lengths, and additionally reports the smallest crosstalk
coefficient (alpha) that would still allow a flip within a fixed pulse budget
— the design-space question an architect would ask when choosing a pitch.

Run with:  python examples/spacing_study.py
"""

from __future__ import annotations

from repro.attack import minimum_alpha_to_flip
from repro.config import CrossbarGeometry
from repro.devices import JartVcmModel, solve_operating_point
from repro.experiments import run_fig3b
from repro.thermal import AnalyticCouplingModel
from repro.utils import ascii_table, log_ascii_chart


def main() -> None:
    print("=== Fig. 3b reproduction: pulses to flip vs electrode spacing ===")
    result = run_fig3b(spacings_m=(10e-9, 30e-9, 50e-9, 70e-9, 90e-9), pulse_lengths_s=(50e-9, 100e-9))
    print(result.to_table())
    print()

    series_50ns = [
        (row["electrode_spacing_nm"], row["pulses_to_flip"])
        for row in result.rows
        if row["pulse_length_ns"] == 50.0
    ]
    print(log_ascii_chart(
        [f"{spacing:.0f} nm" for spacing, _ in series_50ns],
        [pulses for _, pulses in series_50ns],
        title="50 ns series (log scale)",
        unit=" pulses",
    ))
    print()

    print("=== Design-space view: how much coupling does the attack need? ===")
    model = JartVcmModel()
    aggressor = solve_operating_point(model, 1.05, 1.0, 300.0)
    rows = []
    for budget in (1_000, 10_000, 100_000):
        alpha = minimum_alpha_to_flip(
            model,
            pulse_length_s=50e-9,
            pulse_budget=budget,
            aggressor_rise_k=aggressor.temperature_rise_k,
        )
        rows.append((f"{budget}", "unreachable" if alpha is None else f"{alpha:.3f}"))
    print(ascii_table(["pulse budget", "minimum nearest-neighbour alpha"], rows))
    print()

    print("Calibrated alpha of the nearest neighbour vs spacing (analytic kernel):")
    rows = []
    for spacing_nm in (10, 30, 50, 70, 90):
        geometry = CrossbarGeometry(electrode_spacing_m=spacing_nm * 1e-9)
        coupling = AnalyticCouplingModel(geometry)
        centre = geometry.centre_cell()
        neighbour = (centre[0], centre[1] + 1)
        rows.append((f"{spacing_nm} nm", f"{coupling.alpha_between(centre, neighbour):.3f}"))
    print(ascii_table(["electrode spacing", "alpha (same-line nearest neighbour)"], rows))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Compare NeuroHammer attack patterns (the paper's Fig. 3d/e-h study).

Evaluates the canonical pattern set — single aggressor, double-sided row,
double-sided column, quad surround and full row sweep — at the default
operating point and at a tighter electrode spacing, and reports pulses to
flip, wall-clock time and the victim temperature each pattern achieves.

Run with:  python examples/attack_patterns.py
"""

from __future__ import annotations

from repro.experiments import run_fig3d
from repro.utils import log_ascii_chart


def main() -> None:
    for spacing_nm in (50, 20):
        result = run_fig3d(electrode_spacing_m=spacing_nm * 1e-9)
        print(f"=== Attack patterns at {spacing_nm} nm electrode spacing ===")
        print(result.to_table())
        print()
        print(log_ascii_chart(
            result.column("pattern"),
            [float(v) for v in result.column("pulses_to_flip")],
            title="pulses to flip per pattern (log scale)",
            unit=" pulses",
        ))
        print()

    print("Reading the result:")
    print("  * every additional simultaneously hot aggressor raises the victim's")
    print("    crosstalk temperature, which enters the switching kinetics exponentially —")
    print("    double-sided patterns therefore need far fewer pulses than single-sided ones;")
    print("  * the quad pattern alternates between its row pair and column pair (hammering")
    print("    all four at once would fully select the victim), so it pays a duty-cycle")
    print("    penalty per aggressor but still beats the single-aggressor pattern.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Reproduce the paper's Fig. 2a: the thermal coupling map of a 5x5 crossbar.

The centre cell is driven at V_SET = 1.05 V in its low-resistive state from a
300 K ambient; the map shows the steady-state filament temperature of every
cell.  Three models of increasing fidelity are compared: the circuit-level
electro-thermal snapshot (calibrated analytic alpha values), the lumped
thermal resistance network, and the finite-volume solver that replaces the
paper's COMSOL step.  The finite-volume run also extracts the alpha values
the way the paper does (Eq. 3/4 power-sweep regression).

Run with:  python examples/thermal_map.py [--fdm]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.config import CrossbarGeometry, ThermalSolverConfig
from repro.experiments import FIG2A_PAPER_REFERENCE, run_fig2a
from repro.thermal import HeatSolver, build_voxel_model, extract_alpha_values
from repro.utils import ascii_table, matrix_heatmap


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fdm", action="store_true",
        help="also run the finite-volume electro-thermal solver and the alpha extraction (slower)",
    )
    args = parser.parse_args()

    methods = ["circuit", "network"] + (["fdm"] if args.fdm else [])
    summaries = []
    for method in methods:
        outcome = run_fig2a(method=method)
        print(f"--- Fig. 2a temperature map [{method}] (K) ---")
        print(matrix_heatmap(outcome.temperature_map_k))
        print()
        summaries.append(
            (
                method,
                f"{outcome.aggressor_temperature_k:.0f}",
                f"{outcome.same_line_neighbour_k:.0f}",
                f"{outcome.diagonal_neighbour_k:.0f}",
            )
        )

    summaries.append(
        (
            "paper (Fig. 2a)",
            f"{FIG2A_PAPER_REFERENCE['aggressor_k']:.0f}",
            f"{FIG2A_PAPER_REFERENCE['same_line_neighbour_min_k']:.0f}-"
            f"{FIG2A_PAPER_REFERENCE['same_line_neighbour_max_k']:.0f}",
            f"{FIG2A_PAPER_REFERENCE['diagonal_neighbour_min_k']:.0f}-"
            f"{FIG2A_PAPER_REFERENCE['diagonal_neighbour_max_k']:.0f}",
        )
    )
    print(ascii_table(
        ["method", "aggressor [K]", "same-line neighbours [K]", "diagonal neighbours [K]"], summaries
    ))

    if args.fdm:
        print()
        print("Alpha-value extraction from the finite-volume solver (Eq. 3/4):")
        geometry = CrossbarGeometry()
        model = build_voxel_model(
            geometry, ThermalSolverConfig(lateral_resolution_m=25e-9, vertical_resolution_m=25e-9)
        )
        extraction = extract_alpha_values(HeatSolver(model), points=4)
        print(f"  fitted thermal resistance Rth = {extraction.thermal_resistance_k_per_w:.3g} K/W "
              f"(R^2 = {extraction.r_squared:.4f})")
        print("  alpha values:")
        print(matrix_heatmap(extraction.alpha, precision=3))


if __name__ == "__main__":
    main()

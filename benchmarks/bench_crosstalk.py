"""CROSSTALK OPERATOR — structured FFT/stencil apply vs. the seed dense table.

For a ladder of square crossbars this benchmark times the crosstalk hub's
Eq. 5 application through the structured operator (FFT convolution with
cached plans; direct stencil for the compact nearest-neighbour kernel) and,
up to ``REPRO_BENCH_CROSSTALK_DENSE_MAX``, through the dense
``(cells, cells)`` alpha-table matvec of the seed implementation, checking
element-for-element agreement and reporting the speedup and the alpha-state
memory footprint.  A large FFT-only case (``REPRO_BENCH_CROSSTALK_LARGE``,
default 256x256) proves the structured path constructs where the dense table
(~34 GB) cannot.  A full-array Monte-Carlo section times
``MonteCarloEngine(mode="full_array")`` re-solving the nodal operating point
per sampled array on top of the freed memory.

Acceptance bars enforced here:

* at and above 128x128 the hub must run a structured backend (CI's smoke run
  fails if it silently falls back to the dense table),
* every structured apply must finish under ``REPRO_BENCH_CROSSTALK_CEILING_S``,
* wherever the dense matvec is measured at >= 64x64 the structured apply must
  be >= 10x faster,
* the large case must hold <= ~4.5 MB of alpha state.

Results are persisted as ``BENCH_crosstalk.json`` via the shared JSON
reporter so the perf trajectory is tracked across PRs.

Environment knobs (all optional):
    REPRO_BENCH_CROSSTALK_SIZES      comma list of square sizes (default 32,64,128)
    REPRO_BENCH_CROSSTALK_DENSE_MAX  largest size timed through the dense table (default 64)
    REPRO_BENCH_CROSSTALK_LARGE      FFT-only large size, 0 disables (default 256)
    REPRO_BENCH_CROSSTALK_CEILING_S  per-apply wall-clock ceiling [s] (default 5)
    REPRO_BENCH_CROSSTALK_MC_ARRAYS  sampled arrays of the full-array MC run, 0 disables (default 100)
    REPRO_BENCH_CROSSTALK_MC_SIZE    crossbar size of the full-array MC run (default 64)
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import run_once, write_bench_json

from repro.circuit import CrosstalkHub
from repro.config import CrossbarGeometry, SimulationConfig
from repro.montecarlo import MonteCarloConfig, MonteCarloEngine
from repro.thermal import (
    AnalyticCouplingModel,
    DenseCrosstalkOperator,
    UniformCouplingModel,
    make_crosstalk_operator,
)

SIZES = [int(s) for s in os.environ.get("REPRO_BENCH_CROSSTALK_SIZES", "32,64,128").split(",") if s]
DENSE_MAX = int(os.environ.get("REPRO_BENCH_CROSSTALK_DENSE_MAX", "64"))
LARGE_SIZE = int(os.environ.get("REPRO_BENCH_CROSSTALK_LARGE", "256"))
CEILING_S = float(os.environ.get("REPRO_BENCH_CROSSTALK_CEILING_S", "5"))
MC_ARRAYS = int(os.environ.get("REPRO_BENCH_CROSSTALK_MC_ARRAYS", "100"))
MC_SIZE = int(os.environ.get("REPRO_BENCH_CROSSTALK_MC_SIZE", "64"))

#: Required structured-vs-dense apply speedup at >= 64x64 (acceptance bar).
REQUIRED_SPEEDUP = 10.0
#: Agreement budget between the structured and the dense path.
RTOL = 1e-12


def _median_time(fn, repeats: int = 9) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def _temperatures(size: int) -> np.ndarray:
    rng = np.random.default_rng(size)
    temperatures = 300.0 + rng.uniform(0.0, 20.0, size=(size, size))
    temperatures[size // 2, size // 2] = 950.0
    return temperatures


def _bench_size(size: int, with_dense: bool) -> dict:
    geometry = CrossbarGeometry(rows=size, columns=size)
    hub = CrosstalkHub(AnalyticCouplingModel(geometry), 300.0)
    temperatures = _temperatures(size)

    start = time.perf_counter()
    structured = hub.additional_temperatures(temperatures)
    first_apply_s = time.perf_counter() - start
    apply_s = _median_time(lambda: hub.additional_temperatures(temperatures))

    stencil_hub = CrosstalkHub(UniformCouplingModel(geometry, 0.1), 300.0)
    stencil_s = _median_time(lambda: stencil_hub.additional_temperatures(temperatures))

    row = {
        "size": size,
        "cells": size * size,
        "backend": hub.operator_backend,
        "apply_s": apply_s,
        "first_apply_s": first_apply_s,
        "alpha_state_bytes": hub.alpha_state_bytes,
        "dense_table_bytes": 8 * (size * size) ** 2,
        "stencil_backend": stencil_hub.operator_backend,
        "stencil_apply_s": stencil_s,
    }

    assert apply_s < CEILING_S, f"{size}x{size} apply took {apply_s:.2f}s (ceiling {CEILING_S}s)"
    if size >= 128:
        assert hub.operator_backend != "dense", (
            f"{size}x{size} hub fell back to the dense table — the structured "
            "operator must engage for the shipped translation-invariant models"
        )
    assert stencil_hub.operator_backend == "stencil"

    if with_dense:
        build_start = time.perf_counter()
        dense = DenseCrosstalkOperator(hub.coupling)
        dense_build_s = time.perf_counter() - build_start
        rises = np.maximum(temperatures - 300.0, 0.0)
        dense_apply_s = _median_time(lambda: dense.apply(rises))
        np.testing.assert_allclose(
            dense.apply(rises), structured, rtol=RTOL,
            atol=1e-12 * float(np.abs(structured).max()),
        )
        row["dense_build_s"] = dense_build_s
        row["dense_apply_s"] = dense_apply_s
        row["dense_state_bytes"] = dense.state_bytes
        row["speedup_apply"] = dense_apply_s / apply_s
    return row


def test_bench_crosstalk_operator(benchmark):
    rows = [_bench_size(size, with_dense=size <= DENSE_MAX) for size in SIZES]

    large_row = None
    if LARGE_SIZE:
        geometry = CrossbarGeometry(rows=LARGE_SIZE, columns=LARGE_SIZE)
        build_start = time.perf_counter()
        hub = CrosstalkHub(AnalyticCouplingModel(geometry), 300.0)
        build_s = time.perf_counter() - build_start
        temperatures = _temperatures(LARGE_SIZE)
        result = run_once(benchmark, lambda: hub.additional_temperatures(temperatures))
        apply_s = _median_time(lambda: hub.additional_temperatures(temperatures), repeats=5)
        assert hub.operator_backend == "fft"
        assert hub.alpha_state_bytes <= 4.5 * 1024 * 1024, (
            f"{LARGE_SIZE}x{LARGE_SIZE} alpha state holds {hub.alpha_state_bytes} bytes"
        )
        centre = LARGE_SIZE // 2
        assert float(result[centre, centre + 1]) > float(result[0, 0]) > 0.0
        large_row = {
            "size": LARGE_SIZE,
            "cells": LARGE_SIZE * LARGE_SIZE,
            "backend": hub.operator_backend,
            "construct_s": build_s,
            "apply_s": apply_s,
            "alpha_state_bytes": hub.alpha_state_bytes,
            "dense_table_bytes": 8 * (LARGE_SIZE * LARGE_SIZE) ** 2,
        }
        rows.append(large_row)
    else:
        run_once(benchmark, lambda: None)

    mc_row = None
    if MC_ARRAYS:
        config = MonteCarloConfig(
            n_samples=MC_ARRAYS,
            seed=1,
            mode="full_array",
            distributions=[
                {"path": "device.activation_energy_ev", "kind": "normal",
                 "mean": 1.0, "sigma": 0.02, "relative": True, "within_die": 0.3},
                {"path": "device.series_resistance_ohm", "kind": "normal",
                 "mean": 1.0, "sigma": 0.05, "relative": True},
            ],
        )
        simulation = SimulationConfig(geometry={"rows": MC_SIZE, "columns": MC_SIZE})
        engine = MonteCarloEngine(config, simulation=simulation)
        start = time.perf_counter()
        outcome = engine.run()
        mc_total_s = time.perf_counter() - start
        assert int(outcome.array_valid.sum()) == MC_ARRAYS, "sampled arrays failed to solve"
        mc_row = {
            "arrays": MC_ARRAYS,
            "size": MC_SIZE,
            "victims_per_array": outcome.victims_per_array,
            "total_s": mc_total_s,
            "per_array_s": mc_total_s / MC_ARRAYS,
            "flip_probability": outcome.flip_probability,
            "array_flip_probability": outcome.array_flip_probability,
        }

    print()
    for row in rows:
        line = (
            f"crosstalk {row['size']:>4}x{row['size']:<4} backend={row['backend']:<7}"
            f" apply={row['apply_s'] * 1e6:9.1f}us state={row['alpha_state_bytes'] / 1e6:8.3f}MB"
            f" (dense table would be {row['dense_table_bytes'] / 1e9:8.3f}GB)"
        )
        if "dense_apply_s" in row:
            line += (
                f" dense={row['dense_apply_s'] * 1e6:9.1f}us"
                f" -> {row['speedup_apply']:.0f}x"
            )
        print(line)
    if mc_row:
        print(
            f"full-array MC {mc_row['arrays']} arrays of {mc_row['size']}x{mc_row['size']}: "
            f"{mc_row['total_s']:.1f}s total, {mc_row['per_array_s'] * 1e3:.0f}ms/array "
            f"({mc_row['victims_per_array']} victims/array, "
            f"flip p={mc_row['flip_probability']:.3f})"
        )

    for row in rows:
        if row["size"] >= 64 and "speedup_apply" in row:
            assert row["speedup_apply"] >= REQUIRED_SPEEDUP, (
                f"structured apply is only {row['speedup_apply']:.1f}x faster than the dense "
                f"matvec at {row['size']}x{row['size']} (required {REQUIRED_SPEEDUP:.0f}x)"
            )

    # Telemetry sanity: every structured operator built above registered its
    # backend, and at least one structured apply was recorded.
    from repro.obs import get_telemetry

    counters = get_telemetry().counters
    built = sum(v for k, v in counters.items() if k.startswith("crosstalk.operator.built."))
    assert built >= len(rows), f"telemetry saw only {built:.0f} operator builds for {len(rows)} sizes"
    applies = sum(v for k, v in counters.items() if k.startswith("crosstalk.apply"))
    assert applies > 0, "telemetry recorded no crosstalk applies"

    path = write_bench_json(
        "crosstalk",
        {
            "sizes": SIZES,
            "dense_max": DENSE_MAX,
            "large_size": LARGE_SIZE,
            "results": rows,
            "full_array_montecarlo": mc_row,
        },
    )
    print(f"results -> {path}")

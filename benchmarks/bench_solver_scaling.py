"""SOLVER SCALING — sparse vectorized nodal solver vs. the seed dense loop.

For a ladder of square crossbars this benchmark solves one mixed-state write
operating point through the array-native sparse :class:`CrossbarSolver` (cold
and warm-started) and, up to ``REPRO_BENCH_SOLVER_REFERENCE_MAX``, through
the seed dense per-device-loop :class:`ReferenceCrossbarSolver`, checking
element-for-element agreement and reporting the speedup.  A large
sparse-only solve (``REPRO_BENCH_SOLVER_LARGE``, default 256x256) proves the
practical ceiling.

Acceptance bars enforced here:

* the sparse path must actually be used above the dense crossover (CI's
  smoke run fails if it silently falls back to dense),
* every fast solve must finish under ``REPRO_BENCH_SOLVER_CEILING_S``,
* wherever the reference is measured at >= 64x64 the speedup must be >= 10x
  (measured ~2000x warm on a laptop-class core).

Results are persisted as ``BENCH_solver_scaling.json`` via the shared JSON
reporter so the perf trajectory is tracked across PRs.

Environment knobs (all optional):
    REPRO_BENCH_SOLVER_SIZES          comma list of square sizes (default 8,16,32,64)
    REPRO_BENCH_SOLVER_REFERENCE_MAX  largest size timed through the seed solver (default 64)
    REPRO_BENCH_SOLVER_LARGE          sparse-only large size, 0 disables (default 256)
    REPRO_BENCH_SOLVER_CEILING_S      per-solve wall-clock ceiling [s] (default 120)
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import run_once, write_bench_json

from repro.circuit import CrossbarSolver, ReferenceCrossbarSolver, build_crossbar_netlist, write_bias
from repro.circuit.solver import DENSE_CROSSOVER_NODES
from repro.config import CrossbarGeometry
from repro.devices import DeviceStateArrays, JartVcmModel
from repro.obs import get_telemetry


def _dense_solve_count() -> float:
    """The telemetry counter of linear solves that took the dense path."""
    return get_telemetry().counters.get("solver.linear.dense", 0.0)

SIZES = [int(s) for s in os.environ.get("REPRO_BENCH_SOLVER_SIZES", "8,16,32,64").split(",") if s]
REFERENCE_MAX = int(os.environ.get("REPRO_BENCH_SOLVER_REFERENCE_MAX", "64"))
LARGE_SIZE = int(os.environ.get("REPRO_BENCH_SOLVER_LARGE", "256"))
CEILING_S = float(os.environ.get("REPRO_BENCH_SOLVER_CEILING_S", "120"))

#: Required fast-vs-seed speedup at >= 64x64 (acceptance bar of the PR).
REQUIRED_SPEEDUP = 10.0
#: Agreement budget between the sparse and the seed path.
RTOL = 1e-9


def _case(size: int):
    geometry = CrossbarGeometry(rows=size, columns=size)
    netlist = build_crossbar_netlist(geometry)
    states = DeviceStateArrays(size, size)
    states.x[::2, 1::2] = 1.0  # checkerboard-ish HRS/LRS mix
    bias = write_bias(geometry, [(size // 2, size // 2)], 1.05)
    return netlist, states, bias


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _solve_size(size: int, with_reference: bool) -> dict:
    netlist, states, bias = _case(size)
    model = JartVcmModel()
    solver = CrossbarSolver(netlist, model)
    dense_before = _dense_solve_count()
    fast_op, cold_s = _timed(lambda: solver.solve(bias, states))
    _, warm_s = _timed(lambda: solver.solve(bias, states))
    dense_solves = _dense_solve_count() - dense_before

    row = {
        "size": size,
        "nodes": netlist.node_count,
        "devices": size * size,
        "backend": solver.last_backend,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "iterations": fast_op.iterations,
        "dense_linear_solves": dense_solves,
    }

    assert cold_s < CEILING_S, f"{size}x{size} cold solve took {cold_s:.1f}s (ceiling {CEILING_S}s)"
    if netlist.node_count > DENSE_CROSSOVER_NODES:
        assert solver.last_backend == "sparse", (
            f"{size}x{size} ({netlist.node_count} nodes) fell back to the "
            f"{solver.last_backend} backend — the sparse path must engage above "
            f"{DENSE_CROSSOVER_NODES} nodes"
        )
        # The same bar asserted from telemetry: not one linear solve of this
        # size may have taken the dense fallback.
        assert dense_solves == 0, (
            f"{size}x{size}: telemetry recorded {dense_solves:.0f} dense linear "
            f"solve(s) above the {DENSE_CROSSOVER_NODES}-node crossover"
        )

    if with_reference:
        reference = ReferenceCrossbarSolver(netlist, model)
        ref_op, reference_s = _timed(lambda: reference.solve(bias, states.as_mapping()))
        np.testing.assert_allclose(
            fast_op.device_voltages_v, ref_op.device_voltages_v, rtol=RTOL, atol=1e-12
        )
        np.testing.assert_allclose(
            fast_op.device_currents_a, ref_op.device_currents_a, rtol=RTOL, atol=1e-15
        )
        row["reference_s"] = reference_s
        row["speedup_cold"] = reference_s / cold_s
        row["speedup_warm"] = reference_s / warm_s
    return row


def test_bench_solver_scaling(benchmark):
    rows = []
    for size in SIZES:
        rows.append(_solve_size(size, with_reference=size <= REFERENCE_MAX))

    if LARGE_SIZE:
        # The practical-ceiling demonstration is the benchmarked quantity.
        netlist, states, bias = _case(LARGE_SIZE)
        solver = CrossbarSolver(netlist, JartVcmModel())
        dense_before = _dense_solve_count()
        start = time.perf_counter()
        large_op = run_once(benchmark, lambda: solver.solve(bias, states))
        large_s = time.perf_counter() - start
        assert large_op.residual_a < solver.residual_tolerance_a
        assert solver.last_backend == "sparse"
        assert _dense_solve_count() == dense_before, "large solve took the dense fallback"
        assert large_s < CEILING_S
        rows.append(
            {
                "size": LARGE_SIZE,
                "nodes": netlist.node_count,
                "devices": LARGE_SIZE * LARGE_SIZE,
                "backend": solver.last_backend,
                "cold_s": large_s,
                "iterations": large_op.iterations,
            }
        )
    else:
        run_once(benchmark, lambda: None)

    print()
    for row in rows:
        line = (
            f"solver {row['size']:>4}x{row['size']:<4} nodes={row['nodes']:>7} "
            f"backend={row['backend']:<6} cold={row['cold_s'] * 1e3:9.1f}ms"
        )
        if "warm_s" in row:
            line += f" warm={row['warm_s'] * 1e3:8.1f}ms"
        if "reference_s" in row:
            line += (
                f" seed={row['reference_s'] * 1e3:9.1f}ms"
                f" -> {row['speedup_cold']:.0f}x cold / {row['speedup_warm']:.0f}x warm"
            )
        print(line)

    for row in rows:
        if row["size"] >= 64 and "speedup_cold" in row:
            assert row["speedup_cold"] >= REQUIRED_SPEEDUP, (
                f"sparse solver is only {row['speedup_cold']:.1f}x faster than the seed dense "
                f"solver at {row['size']}x{row['size']} (required {REQUIRED_SPEEDUP:.0f}x)"
            )

    path = write_bench_json(
        "solver_scaling",
        {
            "sizes": SIZES,
            "reference_max": REFERENCE_MAX,
            "large_size": LARGE_SIZE,
            "results": rows,
        },
    )
    print(f"results -> {path}")

"""ADAPTIVE — CI-driven sampling versus fixed-n populations.

Two headline numbers of the adaptive-statistics subsystem:

1. **Map refinement.**  The reference 2-D flip-probability map (pulse
   amplitude x ambient temperature across the flip boundary) is evaluated
   once through CI-driven refinement and once with the fixed n every point
   would need to guarantee the same worst-case interval.  Both reach the
   target CI half-width; the adaptive run must do it with >= 5x fewer
   circuit solves (every sample is one aggressor re-solve plus a kinetics
   integration).  The per-point estimates must agree within the combined
   intervals — the speedup is only admissible if the answers match.

2. **Importance sampling on a rare event.**  A < 1e-3 flip probability is
   estimated by tilting the pulse-length distribution towards the flip
   boundary with self-normalized reweighting, and checked against a long
   plain Monte-Carlo reference: the IS estimate must fall inside the plain
   run's 95% interval while spending a small fraction of its samples.

``REPRO_BENCH_ADAPTIVE_TARGET`` / ``_BATCH`` / ``_PLAIN_N`` / ``_IS_N``
shrink the run for CI smoke; the 5x acceptance bar applies at the default
target of 0.02 (CI asserts the strict < 1x bound instead).
"""

from __future__ import annotations

import os

import numpy as np
from conftest import run_once, write_bench_json

from repro.montecarlo import (
    MapAxis,
    MonteCarloConfig,
    MonteCarloEngine,
    fixed_sample_size,
    flip_probability_map,
    refine_flip_probability_map,
)
from repro.config import AttackConfig, SimulationConfig

#: Target CI half-width of the reference map; the >= 5x bar applies at 0.02.
TARGET = float(os.environ.get("REPRO_BENCH_ADAPTIVE_TARGET", "0.02"))
BATCH = int(os.environ.get("REPRO_BENCH_ADAPTIVE_BATCH", "64"))
#: Plain-MC reference size for the rare-event check.
PLAIN_N = int(os.environ.get("REPRO_BENCH_ADAPTIVE_PLAIN_N", "200000"))
#: Importance-sampled population size for the rare-event check.
IS_N = int(os.environ.get("REPRO_BENCH_ADAPTIVE_IS_N", "3000"))

#: Required solve advantage of the refined map at the full target.
REQUIRED_RATIO = 5.0

SIMULATION = {"geometry": {"rows": 3, "columns": 3}}
ATTACK = {"aggressors": [[1, 1]], "victim": [1, 2], "max_pulses": 5000}
#: Cycle-to-cycle pulse jitter + device spread; crosses the flip boundary
#: inside the swept plane.
DISTRIBUTIONS = [
    {"path": "attack.pulse.length_s", "kind": "lognormal", "mean": 1.0, "sigma": 0.3,
     "relative": True},
    {"path": "device.activation_energy_ev", "kind": "normal", "mean": 1.0, "sigma": 0.005,
     "relative": True},
]
X_AXIS = {"path": "attack.pulse.amplitude_v", "values": [0.7, 0.8, 0.9, 1.0, 1.1, 1.2]}
Y_AXIS = {"path": "attack.ambient_temperature_k", "values": [250.0, 280.0, 310.0, 340.0]}

#: Rare-event configuration: at this pulse budget only the far tail of the
#: jitter distribution flips (plain flip probability ~ 1e-4).
RARE_ATTACK = {"aggressors": [[1, 1]], "victim": [1, 2], "max_pulses": 1500}
RARE_SHIFT = 2.0  # sigmas of tilt on the pulse-length distribution


def test_bench_adaptive(benchmark):
    # --- 1. CI-driven map refinement vs fixed-n --------------------------
    refined = run_once(
        benchmark,
        lambda: refine_flip_probability_map(
            MapAxis.from_dict(X_AXIS),
            MapAxis.from_dict(Y_AXIS),
            simulation=SIMULATION,
            attack=ATTACK,
            montecarlo={"seed": 5, "distributions": DISTRIBUTIONS},
            target_half_width=TARGET,
            batch_size=BATCH,
            point_n_max=max(4 * fixed_sample_size(TARGET), BATCH),
        ),
    )
    points = refined.probabilities.size
    n_fixed = fixed_sample_size(TARGET)
    fixed = flip_probability_map(
        MapAxis.from_dict(X_AXIS),
        MapAxis.from_dict(Y_AXIS),
        simulation=SIMULATION,
        attack=ATTACK,
        montecarlo={"seed": 5, "n_samples": n_fixed, "distributions": DISTRIBUTIONS},
    )

    assert refined.converged.all(), "refined map left points above the target half-width"
    # Same answer: per point, the two estimates differ by at most the sum of
    # the interval half-widths (both runs see independent batch streams).
    gap = np.abs(refined.probabilities - fixed.probabilities)
    tolerance = refined.half_widths + TARGET + 1e-9
    assert (gap <= tolerance).all(), (
        f"adaptive and fixed-n maps disagree beyond their intervals "
        f"(max gap {gap.max():.4f} vs tolerance {tolerance.min():.4f})"
    )

    adaptive_solves = int(refined.total_samples)
    fixed_solves = n_fixed * points
    ratio = fixed_solves / adaptive_solves
    print()
    print(
        f"map {refined.probabilities.shape}: target half-width {TARGET:g}, "
        f"adaptive {adaptive_solves} solves vs fixed-n {fixed_solves} "
        f"({ratio:.1f}x fewer), boundary points "
        f"{int((refined.samples_used > refined.samples_used.min()).sum())}/{points}"
    )

    # --- 2. importance sampling on a rare flip event ----------------------
    simulation = SimulationConfig.from_dict(SIMULATION)
    rare_attack = AttackConfig.from_dict(RARE_ATTACK)
    plain = MonteCarloEngine(
        MonteCarloConfig(seed=9, n_samples=PLAIN_N, distributions=DISTRIBUTIONS),
        simulation=simulation,
        attack=rare_attack,
    ).run()
    tilted = MonteCarloEngine(
        MonteCarloConfig(
            seed=9,
            n_samples=IS_N,
            distributions=DISTRIBUTIONS,
            importance={"shift_sigmas": {"attack.pulse.length_s": RARE_SHIFT}},
        ),
        simulation=simulation,
        attack=rare_attack,
    ).run()
    plain_low, plain_high = plain.interval()
    is_low, is_high = tilted.interval()
    print(
        f"rare event: plain n={PLAIN_N} p={plain.flip_probability:.3e} "
        f"[{plain_low:.3e}, {plain_high:.3e}]; importance n={IS_N} "
        f"p={tilted.flip_probability:.3e} [{is_low:.3e}, {is_high:.3e}] "
        f"(ESS {tilted.effective_sample_size:.0f})"
    )
    assert plain_low <= tilted.flip_probability <= plain_high, (
        "importance-sampled estimate falls outside the plain reference interval"
    )

    # Telemetry sanity: the adaptive runs above went through the sampler's
    # instrumented stopping loop.
    from repro.obs import get_telemetry

    counters = get_telemetry().counters
    assert counters.get("adaptive.batches", 0) > 0, "telemetry recorded no adaptive batches"
    assert counters.get("adaptive.samples", 0) > 0, "telemetry recorded no adaptive samples"

    write_bench_json(
        "adaptive",
        {
            "target_half_width": TARGET,
            "batch_size": BATCH,
            "map_points": points,
            "adaptive_solves": adaptive_solves,
            "fixed_n_per_point": n_fixed,
            "fixed_solves": fixed_solves,
            "solve_ratio": ratio,
            "map_max_gap": float(gap.max()),
            "rare_plain_n": PLAIN_N,
            "rare_plain_p": plain.flip_probability,
            "rare_plain_ci": [plain_low, plain_high],
            "rare_is_n": IS_N,
            "rare_is_p": tilted.flip_probability,
            "rare_is_ci": [is_low, is_high],
            "rare_is_ess": tilted.effective_sample_size,
        },
    )

    # Strict bound at any size: adaptive must never need >= the fixed-n
    # solves.  The full >= 5x acceptance bar applies at the default target.
    assert adaptive_solves < fixed_solves, (
        f"adaptive refinement spent {adaptive_solves} solves, fixed-n needs {fixed_solves}"
    )
    if TARGET <= 0.02 and PLAIN_N >= 200_000:
        assert ratio >= REQUIRED_RATIO, (
            f"adaptive map only {ratio:.1f}x cheaper than fixed-n "
            f"(required {REQUIRED_RATIO:.0f}x at target {TARGET:g})"
        )
        assert plain.flip_probability < 1e-3, (
            "rare-event reference drifted above 1e-3; retune RARE_ATTACK"
        )

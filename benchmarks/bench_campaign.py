"""CAMPAIGN — serial versus pooled sweep throughput on a small grid.

Runs the same 8-point campaign (a 3x3 crossbar, four pulse lengths times two
ambient temperatures) through the serial path and through a two-worker pool,
prints both throughputs, and checks the two paths agree bit-for-bit.  On a
single-core runner the pool mostly pays process overhead; on real multi-core
hardware the pooled path approaches ``workers``-fold throughput, which is
the point of the campaign engine.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.campaign import CampaignRunner, CampaignSpec


def small_grid() -> CampaignSpec:
    return CampaignSpec(
        name="bench-campaign",
        mode="grid",
        simulation={"geometry": {"rows": 3, "columns": 3}},
        attack={"aggressors": [[1, 1]], "victim": [1, 2]},
        axes=[
            {"path": "attack.pulse.length_s", "values": [10e-9, 30e-9, 50e-9, 70e-9]},
            {"path": "attack.ambient_temperature_k", "values": [298.0, 348.0]},
        ],
    )


def _report_throughput(label: str, report) -> float:
    points_per_s = len(report.records) / report.duration_s if report.duration_s else float("inf")
    print(f"{label}: {len(report.records)} points in {report.duration_s:.3f}s ({points_per_s:.1f} points/s)")
    return points_per_s


def test_bench_campaign_serial(benchmark):
    report = run_once(benchmark, lambda: CampaignRunner(small_grid(), workers=0).run())
    print()
    _report_throughput("serial", report)
    assert all(record.ok for record in report.records)


def test_bench_campaign_pooled(benchmark):
    spec = small_grid()
    report = run_once(benchmark, lambda: CampaignRunner(spec, workers=2, chunksize=2).run())
    print()
    pooled = _report_throughput("pooled(2)", report)
    assert all(record.ok for record in report.records)

    serial_report = CampaignRunner(spec, workers=0).run()
    serial = _report_throughput("serial   ", serial_report)
    print(f"pooled/serial throughput ratio: {pooled / serial:.2f}x")
    # The pool must agree with the serial path bit-for-bit.
    assert [r.result for r in report.records] == [r.result for r in serial_report.records]

"""ABL2 — device-model ablation: thermally accelerated VCM vs linear ion drift.

The NeuroHammer mechanism requires temperature-dependent switching kinetics.
Driving the same victim stress into the temperature-agnostic linear-ion-drift
baseline shows no crosstalk-induced acceleration, confirming the attack is a
thermal effect and not an artefact of the half-select voltage alone.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_device_model_ablation


def test_bench_ablation_device_model(benchmark):
    result = run_once(benchmark, run_device_model_ablation)
    print("\n" + result.to_table())

    by_model = {row["model"]: row for row in result.rows}
    vcm = by_model["jart_vcm"]
    drift = by_model["linear_ion_drift"]

    # The VCM model is strongly accelerated by the crosstalk temperature...
    assert vcm["thermal_acceleration"] > 50.0
    assert vcm["pulses_with_crosstalk"] < vcm["pulses_without_crosstalk"]
    # ...while the drift baseline does not care about temperature at all.
    assert drift["thermal_acceleration"] == 1.0
    assert drift["pulses_with_crosstalk"] == drift["pulses_without_crosstalk"]

"""ABL1 — crosstalk-coefficient source ablation.

Compares the calibrated analytic kernel, the finite-volume extraction (the
paper's COMSOL-equivalent path) and the lumped thermal network: all three
must deliver nearest-neighbour alpha values in the same regime and an attack
that succeeds, demonstrating that the headline result does not hinge on one
particular thermal model.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_alpha_source_ablation


def test_bench_ablation_alpha_source(benchmark):
    result = run_once(benchmark, run_alpha_source_ablation)
    print("\n" + result.to_table())

    by_source = {row["source"]: row for row in result.rows}
    assert set(by_source) == {"analytic", "finite_volume", "thermal_network"}
    for row in by_source.values():
        assert row["flipped"], f"attack must succeed with the {row['source']} alpha source"
        assert 0.02 <= row["alpha_nearest_neighbour"] <= 0.5
    # All sources agree on the order of magnitude of the pulse count.
    pulses = [float(row["pulses_to_flip"]) for row in by_source.values()]
    assert max(pulses) / min(pulses) < 100.0

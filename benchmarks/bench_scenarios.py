"""SEC6 — end-to-end attack scenarios on the ReRAM main-memory substrate.

Quantifies the security-implication discussion of the paper's Sec. VI: the
privilege-escalation and denial-of-service scenarios must succeed on the
memory substrate using the disturbance figures produced by the circuit-level
attack, and the RowHammer baseline comparison is reported alongside.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_scenarios


def test_bench_attack_scenarios(benchmark):
    result = run_once(benchmark, run_scenarios)
    print("\n" + result.to_table())
    print(f"\npulses to flip one bit: {result.metadata['pulses_to_flip_one_bit']}")
    print(f"RowHammer-activations per NeuroHammer-pulse: "
          f"{result.metadata['neurohammer_vs_rowhammer_pulse_ratio']:.1f}")

    by_name = {row["scenario"]: row for row in result.rows}
    assert by_name["privilege_escalation"]["success"]
    assert by_name["denial_of_service"]["success"]
    # Both scenarios complete within a refresh-interval-scale time budget.
    assert by_name["privilege_escalation"]["attack_time_s"] < 1.0
    assert by_name["denial_of_service"]["attack_time_s"] < 1.0
    # The DoS scenario needs at least two flips, hence at least twice the pulses.
    assert by_name["denial_of_service"]["hammer_pulses"] >= 2 * result.metadata["pulses_to_flip_one_bit"]

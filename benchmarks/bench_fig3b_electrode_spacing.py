"""FIG3B — pulses-to-bit-flip versus electrode spacing (10/50/90 nm).

Regenerates the paper's Fig. 3b: denser crossbars couple more strongly and
need fewer pulses; longer pulses always need fewer pulses.  The paper spans
roughly two decades between 10 nm and 90 nm.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import decades_spanned, monotonically_increasing, run_fig3b


def test_bench_fig3b_electrode_spacing_sweep(benchmark):
    result = run_once(benchmark, run_fig3b)
    print("\n" + result.to_table())

    assert all(result.column("flipped"))
    for pulse_length_ns in (50.0, 75.0, 100.0):
        series = [
            (row["electrode_spacing_nm"], float(row["pulses_to_flip"]))
            for row in result.rows
            if row["pulse_length_ns"] == pulse_length_ns
        ]
        series.sort()
        pulses = [value for _, value in series]
        assert monotonically_increasing(pulses, tolerance=0.05), (
            f"pulses must increase with spacing for the {pulse_length_ns:.0f} ns series"
        )
        span = decades_spanned(pulses)
        assert 1.0 <= span <= 3.0, f"Fig. 3b should span 1-3 decades, got {span:.2f}"

    # Longer pulses need fewer pulses at every spacing.
    for spacing_nm in (10.0, 50.0, 90.0):
        by_length = {
            row["pulse_length_ns"]: float(row["pulses_to_flip"])
            for row in result.rows
            if row["electrode_spacing_nm"] == spacing_nm
        }
        assert by_length[50.0] >= by_length[75.0] >= by_length[100.0]

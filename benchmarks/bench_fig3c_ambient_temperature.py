"""FIG3C — pulses-to-bit-flip versus ambient temperature (273-373 K).

Regenerates the paper's Fig. 3c: the exponential temperature dependence of
the switching kinetics makes the ambient temperature the strongest lever —
the paper spans roughly three decades between 273 K and 373 K.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import decades_spanned, monotonically_decreasing, run_fig3c


def test_bench_fig3c_ambient_temperature_sweep(benchmark):
    result = run_once(benchmark, run_fig3c)
    print("\n" + result.to_table())

    assert all(result.column("flipped"))
    for pulse_length_ns in (10.0, 30.0, 50.0):
        series = [
            (row["ambient_temperature_k"], float(row["pulses_to_flip"]))
            for row in result.rows
            if row["pulse_length_ns"] == pulse_length_ns
        ]
        series.sort()
        pulses = [value for _, value in series]
        assert monotonically_decreasing(pulses, tolerance=0.05), (
            f"pulses must fall with ambient temperature for the {pulse_length_ns:.0f} ns series"
        )
        span = decades_spanned(pulses)
        assert 2.0 <= span <= 4.5, f"Fig. 3c should span roughly three decades, got {span:.2f}"

    # Shorter pulses need more pulses at every temperature.
    for temperature in (273.0, 298.0, 373.0):
        by_length = {
            row["pulse_length_ns"]: float(row["pulses_to_flip"])
            for row in result.rows
            if row["ambient_temperature_k"] == temperature
        }
        assert by_length[10.0] >= by_length[30.0] >= by_length[50.0]

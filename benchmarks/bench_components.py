"""Micro-benchmarks of the simulation substrates.

These do not correspond to a paper figure; they track the cost of the
building blocks the figure sweeps are made of (device model evaluation,
nonlinear crossbar solve, electro-thermal snapshot, finite-volume heat solve,
fast attack path), so performance regressions are visible independently of
the experiment-level numbers.
"""

from __future__ import annotations

import numpy as np

from repro.attack import hammer_once
from repro.circuit import CrossbarArray, write_bias
from repro.config import CrossbarGeometry, ThermalSolverConfig
from repro.devices import DeviceState, JartVcmModel
from repro.thermal import HeatSolver, build_voxel_model


def test_bench_device_current_evaluation(benchmark):
    model = JartVcmModel()
    state = DeviceState(x=0.3, filament_temperature_k=350.0)

    def evaluate():
        total = 0.0
        for voltage in (0.1, 0.3, 0.525, 0.8, 1.05):
            total += model.current(voltage, state)
        return total

    result = benchmark(evaluate)
    assert result > 0.0


def test_bench_crossbar_operating_point(benchmark):
    crossbar = CrossbarArray()
    crossbar.set_state((2, 2), 1.0)
    bias = write_bias(crossbar.geometry, [(2, 2)], 1.05)

    op = benchmark(crossbar.solve_bias, bias)
    assert abs(op.cell_voltage((2, 2)) - 1.05) < 0.1


def test_bench_thermal_snapshot(benchmark):
    crossbar = CrossbarArray()
    crossbar.set_state((2, 2), 1.0)
    bias = write_bias(crossbar.geometry, [(2, 2)], 1.05)

    snapshot = benchmark(crossbar.thermal_snapshot, bias)
    assert snapshot.cell_temperature((2, 2)) > 600.0


def test_bench_finite_volume_heat_solve(benchmark):
    model = build_voxel_model(
        CrossbarGeometry(),
        ThermalSolverConfig(lateral_resolution_m=25e-9, vertical_resolution_m=25e-9),
    )
    solver = HeatSolver(model, 300.0)
    # Warm the cached system matrix so the benchmark measures the solve.
    solver.solve({(2, 2): 100e-6})

    field = benchmark(solver.solve, {(2, 2): 300e-6})
    assert field.cell_temperature((2, 2)) > 400.0


def test_bench_fast_attack_path(benchmark):
    result = benchmark.pedantic(
        hammer_once, kwargs={"pulse_length_s": 50e-9}, rounds=3, iterations=1, warmup_rounds=0
    )
    assert result.flipped

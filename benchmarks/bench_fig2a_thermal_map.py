"""FIG2A — temperature map of the 5x5 crossbar while hammering the centre cell.

Regenerates the paper's Fig. 2a with the circuit-level electro-thermal
snapshot (default path) and checks the headline numbers: the aggressor sits
several hundred kelvin above ambient and the same-line neighbours receive
roughly a tenth of that rise, exactly the operating regime the paper reports
(947 K aggressor, 373-394 K same-line neighbours at 300 K ambient).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import FIG2A_PAPER_REFERENCE, run_fig2a
from repro.utils import matrix_heatmap


def test_bench_fig2a_circuit(benchmark):
    outcome = run_once(benchmark, run_fig2a, method="circuit")
    print("\nFig. 2a temperature map (circuit-level, K):")
    print(matrix_heatmap(outcome.temperature_map_k))
    print(f"aggressor: {outcome.aggressor_temperature_k:.0f} K "
          f"(paper: {FIG2A_PAPER_REFERENCE['aggressor_k']:.0f} K)")
    print(f"same-line neighbours: {outcome.same_line_neighbour_k:.0f} K "
          f"(paper: {FIG2A_PAPER_REFERENCE['same_line_neighbour_min_k']:.0f}-"
          f"{FIG2A_PAPER_REFERENCE['same_line_neighbour_max_k']:.0f} K)")

    assert 800.0 <= outcome.aggressor_temperature_k <= 1100.0
    assert 340.0 <= outcome.same_line_neighbour_k <= 420.0
    assert outcome.same_line_neighbour_k > outcome.diagonal_neighbour_k > outcome.ambient_temperature_k
    # The map must be symmetric about the aggressor for a centre-cell attack.
    temperature_map = outcome.temperature_map_k
    assert abs(temperature_map[2, 1] - temperature_map[2, 3]) < 5.0
    assert abs(temperature_map[1, 2] - temperature_map[3, 2]) < 5.0


def test_bench_fig2a_thermal_network(benchmark):
    outcome = run_once(benchmark, run_fig2a, method="network")
    print("\nFig. 2a temperature map (thermal resistance network, K):")
    print(matrix_heatmap(outcome.temperature_map_k))
    assert outcome.aggressor_temperature_k > outcome.same_line_neighbour_k > outcome.ambient_temperature_k


def test_bench_fig2a_finite_volume(benchmark):
    outcome = run_once(benchmark, run_fig2a, method="fdm")
    print("\nFig. 2a temperature map (finite-volume solver, K):")
    print(matrix_heatmap(outcome.temperature_map_k))
    assert outcome.aggressor_temperature_k > 600.0
    assert outcome.same_line_neighbour_k > outcome.ambient_temperature_k + 20.0

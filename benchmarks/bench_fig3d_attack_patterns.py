"""FIG3D — impact of different attack patterns (paper Fig. 3d/e-h).

Regenerates the attack-pattern comparison: single aggressor, double-sided row
and column, quad surround and full row sweep.  Patterns with more
simultaneously hot aggressors must need fewer pulses than the single-sided
baseline.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_fig3d


def test_bench_fig3d_attack_patterns(benchmark):
    result = run_once(benchmark, run_fig3d)
    print("\n" + result.to_table())
    print()
    print(result.to_chart("pattern", "pulses_to_flip", title="Fig. 3d: pulses to flip per pattern"))

    assert all(result.column("flipped"))
    by_pattern = {row["pattern"]: float(row["pulses_to_flip"]) for row in result.rows}
    assert set(by_pattern) >= {"single", "double_row", "double_column", "quad", "row_sweep"}

    # Double-sided and multi-aggressor patterns are strictly stronger than the
    # single-aggressor baseline.
    assert by_pattern["double_row"] < by_pattern["single"]
    assert by_pattern["double_column"] < by_pattern["single"]
    assert by_pattern["quad"] < by_pattern["single"]
    assert by_pattern["row_sweep"] <= by_pattern["double_row"]

    # Victim temperature rises with the number of simultaneous aggressors.
    temp = {row["pattern"]: float(row["victim_temperature_k"]) for row in result.rows}
    assert temp["double_row"] > temp["single"]
    assert temp["row_sweep"] >= temp["double_row"]

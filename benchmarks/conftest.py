"""Shared configuration for the benchmark harness.

Every benchmark regenerates the data behind one table/figure of the paper
(see DESIGN.md's experiment index) and prints the regenerated rows, so
running ``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
section end to end.

Benchmarks additionally persist machine-readable results through
:func:`write_bench_json`, which writes ``BENCH_<name>.json`` next to this
file (override the directory with ``REPRO_BENCH_JSON_DIR``) and appends the
same record to ``BENCH_history.jsonl`` in that directory.  The JSON files
carry timings plus the array sizes / sample counts they were measured at, so
the perf trajectory is tracked across PRs — and ``repro obs check-bench``
gates the latest history entry against ``BENCH_baselines.json``.

Every benchmark runs with a fresh live telemetry (:mod:`repro.obs`), and
:func:`write_bench_json` embeds the run's counter summary under a
``telemetry`` key — so a perf regression can be cross-read against *what*
the run actually did (solver iterations, backend choices, batch counts).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.obs import (
    HISTORY_FILENAME,
    append_history,
    disable_telemetry,
    enable_telemetry,
    get_telemetry,
    telemetry_summary,
)


@pytest.fixture(autouse=True)
def bench_telemetry(monkeypatch):
    """A fresh live telemetry per benchmark; off again afterwards.

    Also strips any ambient ``REPRO_FAULTS`` plan so a chaos-testing shell
    cannot inject faults into timing runs.
    """
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    telemetry = enable_telemetry()
    yield telemetry
    disable_telemetry()


def run_once(benchmark, function, *args, **kwargs):
    """Run a heavy experiment exactly once under the benchmark fixture.

    The figure sweeps take from a fraction of a second to a few seconds;
    repeating them dozens of times would make the harness needlessly slow
    without improving the timing signal, so they are measured with a single
    round/iteration.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


def write_bench_json(name: str, payload: dict) -> Path:
    """Persist one benchmark's results as ``BENCH_<name>.json``.

    Args:
        name: Benchmark identifier (used in the file name).
        payload: JSON-serialisable results — timings, sizes, speedups.

    Returns:
        The path the results were written to.
    """
    directory = Path(os.environ.get("REPRO_BENCH_JSON_DIR", Path(__file__).resolve().parent))
    directory.mkdir(parents=True, exist_ok=True)
    record = {
        "benchmark": name,
        "written_at_unix_s": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        **payload,
    }
    telemetry = get_telemetry()
    if telemetry.enabled and "telemetry" not in record:
        record["telemetry"] = telemetry_summary(telemetry.snapshot())
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    # The snapshot file is the latest point; the history line is the
    # trajectory `repro obs check-bench` gates against.
    append_history(record, directory / HISTORY_FILENAME)
    return path

"""Shared configuration for the benchmark harness.

Every benchmark regenerates the data behind one table/figure of the paper
(see DESIGN.md's experiment index) and prints the regenerated rows, so
running ``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
section end to end.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run a heavy experiment exactly once under the benchmark fixture.

    The figure sweeps take from a fraction of a second to a few seconds;
    repeating them dozens of times would make the harness needlessly slow
    without improving the timing signal, so they are measured with a single
    round/iteration.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)

"""MONTECARLO — vectorized population throughput versus the scalar loop.

Runs the same seeded Monte-Carlo population once through the NumPy-vectorized
engine and once through the per-cell scalar reference loop, checks the two
agree cell-for-cell, and reports the throughput ratio.  This is the headline
perf number of the variability subsystem: at the default 1000 samples the
vectorized path must deliver at least a 10x speedup.

``REPRO_BENCH_MC_SAMPLES`` overrides the population size; CI smoke runs use a
tiny count (agreement is still checked, the 10x bar only applies at >= 1000).
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import run_once, write_bench_json

from repro.config import AttackConfig, SimulationConfig
from repro.montecarlo import MonteCarloConfig, MonteCarloEngine

#: Population size; the acceptance threshold applies at the default 1000.
N_SAMPLES = int(os.environ.get("REPRO_BENCH_MC_SAMPLES", "1000"))

#: Required vectorized-over-scalar speedup at the full population size.
REQUIRED_SPEEDUP = 10.0


def build_engine() -> MonteCarloEngine:
    config = MonteCarloConfig(
        n_samples=N_SAMPLES,
        seed=7,
        distributions=[
            {"path": "device.activation_energy_ev", "kind": "normal",
             "mean": 1.0, "sigma": 0.01, "relative": True},
            {"path": "device.series_resistance_ohm", "kind": "normal",
             "mean": 1.0, "sigma": 0.05, "relative": True},
            {"path": "attack.pulse.length_s", "kind": "lognormal",
             "mean": 50e-9, "sigma": 0.2},
        ],
    )
    simulation = SimulationConfig.from_dict({"geometry": {"rows": 3, "columns": 3}})
    attack = AttackConfig.from_dict(
        {"aggressors": [[1, 1]], "victim": [1, 2], "max_pulses": 500_000}
    )
    return MonteCarloEngine(config, simulation=simulation, attack=attack)


def test_bench_montecarlo_vectorized_vs_scalar(benchmark):
    engine = build_engine()
    engine.nominal_conditions()  # the one-off circuit solve is common to both paths

    # Warm-up pass, then best-of-three per path so a scheduler hiccup on a
    # busy runner cannot masquerade as a regression.
    vectorized = engine.run()
    vectorized_s = min(_timed(lambda: engine.run()) for _ in range(3))
    start = time.perf_counter()
    scalar = run_once(benchmark, lambda: engine.run(vectorized=False))
    scalar_s = time.perf_counter() - start
    if N_SAMPLES >= 1000:
        scalar_s = min(scalar_s, _timed(lambda: engine.run(vectorized=False)))

    assert np.array_equal(vectorized.flipped, scalar.flipped)
    assert np.array_equal(vectorized.pulses, scalar.pulses)

    speedup = scalar_s / vectorized_s
    print()
    print(
        f"montecarlo n={N_SAMPLES}: vectorized {vectorized_s:.3f}s "
        f"({N_SAMPLES / vectorized_s:.0f} cells/s), scalar {scalar_s:.3f}s "
        f"({N_SAMPLES / scalar_s:.0f} cells/s) -> {speedup:.1f}x speedup"
    )
    print(f"flip probability {vectorized.flip_probability:.3f}, "
          f"geomean pulses {vectorized.summary()['geomean_pulses_to_flip']}")
    write_bench_json(
        "montecarlo",
        {
            "n_samples": N_SAMPLES,
            "vectorized_s": vectorized_s,
            "scalar_s": scalar_s,
            "speedup": speedup,
            "cells_per_s_vectorized": N_SAMPLES / vectorized_s,
            "flip_probability": vectorized.flip_probability,
        },
    )
    if N_SAMPLES >= 1000:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"vectorized path is only {speedup:.1f}x faster than the scalar loop "
            f"(required {REQUIRED_SPEEDUP:.0f}x at n={N_SAMPLES})"
        )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start

"""ABL3 — write-scheme ablation: V/2 (paper) versus V/3 (mitigation).

The V/3 scheme reduces the half-select stress from V/2 to V/3; because the
switching kinetics are strongly field-dependent, the attack must become at
least an order of magnitude more expensive.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_bias_scheme_ablation


def test_bench_ablation_bias_scheme(benchmark):
    result = run_once(benchmark, run_bias_scheme_ablation)
    print("\n" + result.to_table())

    by_scheme = {row["scheme"]: row for row in result.rows}
    assert by_scheme["v_half"]["flipped"]
    v_half = float(by_scheme["v_half"]["pulses_to_flip"])
    v_third = float(by_scheme["v_third"]["pulses_to_flip"])
    assert v_third > 10.0 * v_half, (
        f"V/3 biasing should slow the attack by >10x (got {v_third / v_half:.1f}x)"
    )

"""FIG3A — pulses-to-bit-flip versus hammer pulse length (10-100 ns).

Regenerates the paper's Fig. 3a series.  The absolute counts depend on the
calibration, but the shape must hold: the pulse count decreases
monotonically with the pulse length and spans roughly one decade between
10 ns and 100 ns (paper: ~10^4 down to ~10^3).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import decades_spanned, monotonically_decreasing, run_fig3a


def test_bench_fig3a_pulse_length_sweep(benchmark):
    result = run_once(benchmark, run_fig3a)
    print("\n" + result.to_table())
    print()
    print(result.to_chart("pulse_length_ns", "pulses_to_flip", title="Fig. 3a: pulses to flip"))

    pulses = [float(v) for v in result.column("pulses_to_flip")]
    assert all(result.column("flipped")), "every operating point of Fig. 3a must flip"
    assert monotonically_decreasing(pulses, tolerance=0.05)
    span = decades_spanned(pulses)
    assert 0.6 <= span <= 1.6, f"Fig. 3a should span about one decade, got {span:.2f}"
    # Same order of magnitude as the paper at the end points.
    assert 3_000 <= pulses[0] <= 100_000       # 10 ns
    assert 300 <= pulses[-1] <= 30_000          # 100 ns
